"""Static circuit analysis: path delays, balancing, and design-rule checks.

Section 4.2 describes PyLSE's static checks and Figure 11 shows manual
path-balancing arithmetic (11 + 14 = 25 vs 11 + 12 + 2 = 25). This module
automates that arithmetic over whole circuits:

* :func:`circuit_graph` — the circuit as a :mod:`networkx` DiGraph whose
  edges carry nominal firing delays;
* :func:`path_delays` — min/max accumulated delay from each circuit input
  to each output;
* :func:`balance_report` — per-cell input-arrival skew, flagging
  convergent paths whose delays differ by more than a tolerance (the
  situations Figure 11 fixes with a JTL);
* :func:`clock_skew` — arrival-time spread of a clock wire across all the
  clocked cells it reaches;
* :func:`total_jjs` — the area metric (sum of per-instance ``jjs``).

All results are *nominal* (distribution delays collapse to their mean; a
cell's output delay is the max over its transitions firing that output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .circuit import Circuit, working_circuit
from .errors import PylseError
from .ir import compile_circuit


def circuit_graph(circuit: Optional[Circuit] = None) -> nx.DiGraph:
    """The circuit as a delay-weighted DiGraph.

    Nodes are circuit node names (plus ``wire:<name>`` terminals for circuit
    inputs and outputs); an edge ``u -> v`` with weight ``d`` means a pulse
    leaving ``u`` arrives at ``v`` after ``d`` ps (the firing delay of the
    producing output).

    The graph is derived from the compiled IR and cached on it, so every
    analysis and lint pass over the same circuit revision shares one
    instance — treat it as read-only (copy before mutating).
    """
    circuit = circuit if circuit is not None else working_circuit()
    compiled = compile_circuit(circuit, validate=False)
    graph = compiled._cache.get("nx_graph")
    if graph is not None:
        return graph
    graph = nx.DiGraph()
    for nd in compiled.dispatch:
        if nd.is_input:
            graph.add_node(f"in:{compiled.labels[nd.outs[0].wire_id]}",
                           kind="input")
        else:
            graph.add_node(nd.name, kind="cell", cell=nd.cell)
    for wid, (src, src_port) in enumerate(compiled.wire_source):
        label = compiled.labels[wid]
        if compiled.dispatch[src].is_input:
            u, delay_min, delay = f"in:{label}", 0.0, 0.0
        else:
            u = compiled.nodes[src].name
            delay_min, delay = compiled.delay_window(src, src_port)
        dest = compiled.wire_dest[wid]
        if dest is None:
            v = f"out:{label}"
            graph.add_node(v, kind="output")
            graph.add_edge(u, v, delay=delay, delay_min=delay_min,
                           wire=label, port=None)
        else:
            dst, dst_port = dest
            graph.add_edge(u, compiled.nodes[dst].name, delay=delay,
                           delay_min=delay_min, wire=label, port=dst_port)
    compiled._cache["nx_graph"] = graph
    return graph


def path_delays(circuit: Optional[Circuit] = None) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """(input name, output name) -> (min, max) accumulated nominal delay.

    Only defined for acyclic circuits (feedback loops have unbounded path
    sets); raises on cycles.
    """
    graph = circuit_graph(circuit)
    if not nx.is_directed_acyclic_graph(graph):
        raise PylseError("Circuit contains feedback loops; path delays are unbounded")
    inputs = [n for n, d in graph.nodes(data=True) if d.get("kind") == "input"]
    outputs = [n for n, d in graph.nodes(data=True) if d.get("kind") == "output"]
    result: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for src in inputs:
        for dst in outputs:
            paths = list(nx.all_simple_paths(graph, src, dst))
            if not paths:
                continue
            totals = [
                sum(graph[u][v]["delay"] for u, v in zip(path, path[1:]))
                for path in paths
            ]
            result[(src[3:], dst[4:])] = (min(totals), max(totals))
    return result


@dataclass
class SkewFinding:
    """One convergence point whose input paths are imbalanced."""

    node: str
    cell: str
    arrivals: Dict[str, Tuple[float, float]]  # input port -> (min, max)
    skew: float

    def __str__(self) -> str:
        detail = ", ".join(
            f"{port}: [{lo:g}, {hi:g}]" for port, (lo, hi) in self.arrivals.items()
        )
        return f"{self.node} ({self.cell}): skew {self.skew:g} ps ({detail})"


def balance_report(
    circuit: Optional[Circuit] = None,
    tolerance: float = 0.0,
    ignore_ports: Tuple[str, ...] = ("clk",),
) -> List[SkewFinding]:
    """Find multi-input cells whose data inputs arrive with unequal delay.

    ``arrivals`` per input port are (min, max) accumulated delays from any
    circuit input. Ports named in ``ignore_ports`` (clocks by default) are
    excluded — clock-to-data skew is intentional in synchronous designs;
    use :func:`clock_skew` for the clock network itself.
    """
    circuit = circuit if circuit is not None else working_circuit()
    graph = circuit_graph(circuit)
    if not nx.is_directed_acyclic_graph(graph):
        raise PylseError("Circuit contains feedback loops; skew is undefined")
    inputs = [n for n, d in graph.nodes(data=True) if d.get("kind") == "input"]

    # Earliest/latest arrival at each graph node.
    order = list(nx.topological_sort(graph))
    earliest: Dict[str, float] = {}
    latest: Dict[str, float] = {}
    for n in order:
        if n in inputs:
            earliest[n] = latest[n] = 0.0
    # Arrival at a node via each in-edge (port-resolved).
    port_arrivals: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for n in order:
        preds = list(graph.pred[n])
        reachable = [p for p in preds if p in earliest]
        if n not in inputs and reachable:
            earliest[n] = min(earliest[p] + graph[p][n]["delay"] for p in reachable)
            latest[n] = max(latest[p] + graph[p][n]["delay"] for p in reachable)
        ports: Dict[str, Tuple[float, float]] = {}
        for p in reachable:
            port = graph[p][n]["port"]
            if port is None:
                continue
            lo = earliest[p] + graph[p][n]["delay"]
            hi = latest[p] + graph[p][n]["delay"]
            if port in ports:
                lo = min(lo, ports[port][0])
                hi = max(hi, ports[port][1])
            ports[port] = (lo, hi)
        port_arrivals[n] = ports

    findings: List[SkewFinding] = []
    for node in circuit.cells():
        ports = {
            port: window
            for port, window in port_arrivals.get(node.name, {}).items()
            if port not in ignore_ports
        }
        if len(ports) < 2:
            continue
        lows = [lo for lo, _ in ports.values()]
        highs = [hi for _, hi in ports.values()]
        skew = max(highs) - min(lows)
        if skew > tolerance:
            findings.append(
                SkewFinding(
                    node=node.name,
                    cell=node.element.name,
                    arrivals=ports,
                    skew=skew,
                )
            )
    findings.sort(key=lambda f: -f.skew)
    return findings


def clock_skew(clock_name: str, circuit: Optional[Circuit] = None) -> Tuple[float, float]:
    """(min, max) arrival delay of a clock input across all cells it reaches.

    The clock tree's leaf skew — the quantity that made the naive adder
    design fail (see ``repro.designs.adder_sync``).
    """
    circuit = circuit if circuit is not None else working_circuit()
    graph = circuit_graph(circuit)
    src = f"in:{clock_name}"
    if src not in graph:
        raise PylseError(f"No circuit input named {clock_name!r}")
    arrivals: List[float] = []
    lengths = nx.single_source_dijkstra_path_length(graph, src, weight="delay")
    for node in circuit.cells():
        if node.name not in lengths:
            continue
        consumed_ports = [
            data["port"]
            for _, _, data in graph.in_edges(node.name, data=True)
        ]
        if "clk" in consumed_ports:
            # Arrival via the clk edge specifically.
            for pred, _, data in graph.in_edges(node.name, data=True):
                if data["port"] == "clk" and pred in lengths:
                    arrivals.append(lengths[pred] + data["delay"])
    if not arrivals:
        raise PylseError(f"Clock {clock_name!r} reaches no clocked cell")
    return min(arrivals), max(arrivals)


def clock_wires(circuit: Optional[Circuit] = None) -> Dict[str, List[str]]:
    """Structurally identify the circuit's clock inputs.

    Returns ``{input label: [clocked cell node names]}`` for every circuit
    input whose pulses reach at least one cell input port named ``clk``
    (through splitters, JTLs, or any other fabric). This replaces
    name-prefix heuristics: a clock called ``c0`` or ``clock`` is found just
    as well as one called ``clk``.
    """
    circuit = circuit if circuit is not None else working_circuit()
    compiled = compile_circuit(circuit, validate=False)
    return {
        label: list(cells) for label, cells in compiled.clock_wires.items()
    }


def total_jjs(circuit: Optional[Circuit] = None) -> int:
    """The area metric: total Josephson junction count over all cells."""
    circuit = circuit if circuit is not None else working_circuit()
    return sum(
        getattr(node.element, "jjs", 0) for node in circuit.cells()
    )
