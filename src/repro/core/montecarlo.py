"""Monte-Carlo timing-yield analysis.

Section 5.2's robustness evaluation, packaged as a library: re-run a design
many times under Gaussian delay variability and measure the *yield* — the
fraction of runs whose outputs still satisfy a user-supplied correctness
predicate and raise no timing violation. :func:`critical_sigma` then
bisects for the noise level at which yield first drops below a target,
giving a single robustness figure of merit per design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from .circuit import Circuit
from .errors import PylseError
from .parallel import (
    MIS_BEHAVED,
    OK,
    VIOLATION,
    classify_seed,
    merge_stats,
    resolve_workers,
    run_chunk_stats,
    run_seeds_parallel,
    run_seeds_parallel_stats,
)
from .simulation import Events

if TYPE_CHECKING:  # layering: core never imports repro.obs at runtime
    from ..obs.metrics import SimMetrics

#: A correctness predicate over simulation events.
Predicate = Callable[[Events], bool]

#: A builder that elaborates the design into a fresh circuit and returns it.
CircuitFactory = Callable[[], Circuit]


@dataclass
class YieldResult:
    """Outcome of one Monte-Carlo yield measurement."""

    sigma: float
    runs: int
    passed: int
    mis_behaved: int
    violations: int
    #: seed -> failure kind, for reproducing individual failures
    failures: Dict[int, str] = field(default_factory=dict)
    #: aggregated per-cell metrics over every seed, when the measurement
    #: ran with ``collect_stats=True`` (None otherwise).
    stats: Optional["SimMetrics"] = None

    @property
    def yield_fraction(self) -> float:
        return self.passed / self.runs if self.runs else 0.0


def measure_yield(
    factory: CircuitFactory,
    predicate: Predicate,
    sigma: float,
    seeds: Sequence[int] = tuple(range(50)),
    workers: int = 1,
    collect_stats: bool = False,
) -> YieldResult:
    """Run the design once per seed at the given noise level.

    ``factory`` must build a *fresh* circuit each call (element state and
    instance naming are per-circuit); ``predicate`` judges the events of a
    completed run. Timing violations count as failures of kind
    "violation"; predicate failures as "mis-behaved".

    ``workers`` shards the seed list across a process pool
    (:mod:`repro.core.parallel`): ``1`` (the default) is the in-process
    reference path, ``None``/``0`` means one worker per CPU. Parallel runs
    are bit-identical to sequential ones for the same seed list, but
    require ``factory`` and ``predicate`` to be picklable (module-level
    callables).

    ``collect_stats=True`` attaches a metrics-only observer
    (:mod:`repro.obs`) to every run and puts the seed-order aggregate on
    ``YieldResult.stats`` — per-cell dispatch counts, transition tallies,
    violation counts, and firing-delay histograms across the whole sweep.
    The aggregate is bit-identical whether the sweep ran sequentially or
    parallel.
    """
    seeds = list(seeds)
    if not seeds:
        raise PylseError("measure_yield needs at least one seed")
    workers = resolve_workers(workers)
    stats: Optional["SimMetrics"] = None
    if workers > 1 and len(seeds) > 1:
        if collect_stats:
            outcomes, stats = run_seeds_parallel_stats(
                factory, predicate, sigma, seeds, workers
            )
        else:
            outcomes = run_seeds_parallel(
                factory, predicate, sigma, seeds, workers
            )
    elif collect_stats:
        outcomes, per_seed = run_chunk_stats(factory, predicate, sigma, seeds)
        stats = merge_stats(per_seed)
    else:
        outcomes = [
            classify_seed(factory, predicate, sigma, seed) for seed in seeds
        ]
    passed = mis = viol = 0
    failures: Dict[int, str] = {}
    for seed, outcome in zip(seeds, outcomes):
        if outcome == OK:
            passed += 1
        elif outcome == VIOLATION:
            viol += 1
            failures[seed] = outcome
        else:
            mis += 1
            failures[seed] = MIS_BEHAVED
    return YieldResult(
        sigma=sigma,
        runs=len(seeds),
        passed=passed,
        mis_behaved=mis,
        violations=viol,
        failures=failures,
        stats=stats,
    )


def yield_curve(
    factory: CircuitFactory,
    predicate: Predicate,
    sigmas: Sequence[float],
    seeds: Sequence[int] = tuple(range(25)),
    workers: int = 1,
) -> List[YieldResult]:
    """Yield at each noise level, for plotting or tabulation."""
    return [
        measure_yield(factory, predicate, s, seeds, workers=workers)
        for s in sigmas
    ]


def critical_sigma(
    factory: CircuitFactory,
    predicate: Predicate,
    target_yield: float = 0.9,
    sigma_hi: float = 8.0,
    seeds: Sequence[int] = tuple(range(20)),
    iterations: int = 6,
    workers: int = 1,
) -> Optional[float]:
    """Bisect for the smallest sigma at which yield drops below target.

    Returns None if the design already fails at sigma = 0 (a functional
    bug, not a robustness limit); returns ``sigma_hi`` if the design still
    meets the target there (more robust than the search range).
    ``workers`` is forwarded to every underlying :func:`measure_yield`.
    """
    if not 0 < target_yield <= 1:
        raise PylseError(f"target_yield must be in (0, 1], got {target_yield}")

    def sample(sigma: float) -> float:
        return measure_yield(
            factory, predicate, sigma, seeds, workers=workers
        ).yield_fraction

    if sample(0.0) < target_yield:
        return None
    if sample(sigma_hi) >= target_yield:
        return sigma_hi
    lo, hi = 0.0, sigma_hi
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if sample(mid) >= target_yield:
            lo = mid
        else:
            hi = mid
    return hi
