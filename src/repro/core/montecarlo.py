"""Monte-Carlo timing-yield analysis.

Section 5.2's robustness evaluation, packaged as a library: re-run a design
many times under Gaussian delay variability and measure the *yield* — the
fraction of runs whose outputs still satisfy a user-supplied correctness
predicate and raise no timing violation. :func:`critical_sigma` then
bisects for the noise level at which yield first drops below a target,
giving a single robustness figure of merit per design.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from .batchsim import BatchReport
from .circuit import Circuit
from .errors import PylseError
from .parallel import (
    MIS_BEHAVED,
    OK,
    VIOLATION,
    YieldEngine,
    default_engine,
    merge_stats,
    resolve_workers,
    run_chunk_batched,
    run_chunk_stats_batched,
)
from .simulation import Events

if TYPE_CHECKING:  # layering: core never imports repro.obs at runtime
    from ..obs.metrics import SimMetrics

#: A correctness predicate over simulation events.
Predicate = Callable[[Events], bool]

#: A builder that elaborates the design into a fresh circuit and returns it.
CircuitFactory = Callable[[], Circuit]


@dataclass
class YieldResult:
    """Outcome of one Monte-Carlo yield measurement."""

    sigma: float
    runs: int
    passed: int
    mis_behaved: int
    violations: int
    #: seed -> failure kind, for reproducing individual failures
    failures: Dict[int, str] = field(default_factory=dict)
    #: aggregated per-cell metrics over every seed, when the measurement
    #: ran with ``collect_stats=True`` (None otherwise).
    stats: Optional["SimMetrics"] = None
    # Vectorized-drain observability (repro.core.batchsim). Excluded from
    # equality: two backends producing the same outcomes are equal results
    # even if one batched more lanes (e.g. the adaptive engine classifies
    # a calibration seed outside any batch).
    #: seeds classified entirely inside a vectorized batch.
    batched_lanes: int = field(default=0, compare=False)
    #: seeds replayed on the per-seed reference drain, in seed order.
    fallback_seeds: List[int] = field(default_factory=list, compare=False)
    #: divergence cause -> count for the replayed seeds (empty when every
    #: fallback was a non-divergence, e.g. calibration or batch=0).
    divergence: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def yield_fraction(self) -> float:
        return self.passed / self.runs if self.runs else 0.0


#: How to execute a sweep: an explicit :class:`YieldEngine`, a policy
#: string (``"auto"`` — adaptive engine when ``workers > 1``; ``"pool"``
#: — force the process pool; ``"serial"`` — force the in-process
#: reference path), or ``None`` (same as ``"auto"``).
EngineSpec = Union[YieldEngine, str, None]


def measure_yield(
    factory: CircuitFactory,
    predicate: Predicate,
    sigma: float,
    seeds: Sequence[int] = tuple(range(50)),
    workers: int = 1,
    collect_stats: bool = False,
    engine: EngineSpec = None,
    min_seeds_parallel: Optional[int] = None,
    batch: Union[int, str, None] = None,
) -> YieldResult:
    """Run the design once per seed at the given noise level.

    ``factory`` must build a *fresh* circuit each call (element state and
    instance naming are per-circuit); ``predicate`` judges the events of a
    completed run. Timing violations count as failures of kind
    "violation"; predicate failures as "mis-behaved".

    ``seeds`` must be unique: outcomes and the ``failures`` dict are keyed
    by seed, so a duplicate would silently overwrite an earlier outcome —
    duplicates are rejected up front instead.

    ``workers`` shards the seed list across a persistent process pool
    (:class:`repro.core.parallel.YieldEngine`): ``1`` (the default) is the
    in-process reference path, ``None``/``0`` means one worker per CPU.
    Repeated calls with the same worker count reuse one cached engine —
    and therefore one warm pool — so sweeps like :func:`yield_curve` and
    :func:`critical_sigma` amortize pool startup across calls. Parallel
    runs are bit-identical to sequential ones for the same seed list, but
    require ``factory`` and ``predicate`` to be picklable (module-level
    callables).

    ``engine`` selects the backend: a :class:`YieldEngine` instance (its
    pool is reused across calls; the ``workers`` argument is then
    ignored), ``"auto"``/``None`` (cached default engine, adaptive serial
    fallback for sweeps too small to amortize pool overhead), ``"pool"``
    (force the process pool), or ``"serial"`` (force the sequential
    reference path). ``min_seeds_parallel`` overrides the adaptive
    engine's floor: seed lists shorter than it never use the pool.

    ``collect_stats=True`` attaches a metrics-only observer
    (:mod:`repro.obs`) to every run and puts the seed-order aggregate on
    ``YieldResult.stats`` — per-cell dispatch counts, transition tallies,
    violation counts, and firing-delay histograms across the whole sweep.
    The aggregate is bit-identical whichever backend ran the sweep.

    ``batch`` controls the vectorized multi-seed drain
    (:mod:`repro.core.batchsim`): ``None``/``"auto"`` (default) picks a
    lane width automatically, a positive int fixes it, and ``0`` disables
    batching (per-seed reference drain). Batched results are element-wise
    identical to unbatched ones; ``YieldResult.batched_lanes``,
    ``fallback_seeds``, and ``divergence`` report how much of the sweep
    the batch covered and why any seeds were replayed individually.
    """
    seeds = list(seeds)
    if not seeds:
        raise PylseError("measure_yield needs at least one seed")
    duplicates = sorted(s for s, n in Counter(seeds).items() if n > 1)
    if duplicates:
        shown = ", ".join(map(repr, duplicates[:8]))
        more = ", ..." if len(duplicates) > 8 else ""
        raise PylseError(
            f"measure_yield got duplicate seed(s) {shown}{more}: outcomes "
            "and YieldResult.failures are keyed by seed, so each seed must "
            "appear at most once (a duplicate would silently overwrite an "
            "earlier outcome)"
        )
    workers = resolve_workers(workers)
    policy: Optional[str] = None
    resolved_engine: Optional[YieldEngine] = None
    if isinstance(engine, YieldEngine):
        resolved_engine = engine
    elif engine in (None, "auto", "pool"):
        policy = None if engine in (None, "auto") else "pool"
        if workers > 1 and len(seeds) > 1:
            resolved_engine = default_engine(workers)
    elif engine != "serial":
        raise PylseError(
            f"unknown engine {engine!r}: expected a YieldEngine instance, "
            "'auto', 'pool', 'serial', or None"
        )
    stats: Optional["SimMetrics"] = None
    report: BatchReport
    if resolved_engine is not None:
        outcomes, stats = resolved_engine.run(
            factory,
            predicate,
            sigma,
            seeds,
            collect_stats=collect_stats,
            policy=policy,
            min_seeds_parallel=min_seeds_parallel,
            batch=batch,
        )
        report = resolved_engine.last_report
    elif collect_stats:
        outcomes, per_seed, report = run_chunk_stats_batched(
            factory, predicate, sigma, seeds, batch
        )
        stats = merge_stats(per_seed)
    else:
        # Elaborate + compile once, then drain all seeds through the
        # vectorized batched loop (element-wise identical to per-seed
        # simulation — tests/test_differential.py). This is the
        # workers=1 production path.
        outcomes, report = run_chunk_batched(
            factory, predicate, sigma, seeds, batch
        )
    if len(outcomes) != len(seeds):
        # zip() would silently truncate and shift outcomes onto the wrong
        # seeds; the per-chunk guard in repro.core.parallel names the
        # offending chunk, this is the backstop for any backend.
        raise PylseError(
            f"Monte-Carlo backend returned {len(outcomes)} outcomes for "
            f"{len(seeds)} seeds; refusing to tally a truncated sweep"
        )
    passed = mis = viol = 0
    failures: Dict[int, str] = {}
    for seed, outcome in zip(seeds, outcomes):
        if outcome == OK:
            passed += 1
        elif outcome == VIOLATION:
            viol += 1
            failures[seed] = outcome
        else:
            mis += 1
            failures[seed] = MIS_BEHAVED
    return YieldResult(
        sigma=sigma,
        runs=len(seeds),
        passed=passed,
        mis_behaved=mis,
        violations=viol,
        failures=failures,
        stats=stats,
        batched_lanes=report.batched_lanes,
        fallback_seeds=list(report.fallback_seeds),
        divergence=dict(report.divergence),
    )


def yield_curve(
    factory: CircuitFactory,
    predicate: Predicate,
    sigmas: Sequence[float],
    seeds: Sequence[int] = tuple(range(25)),
    workers: int = 1,
    engine: EngineSpec = None,
    batch: Union[int, str, None] = None,
) -> List[YieldResult]:
    """Yield at each noise level, for plotting or tabulation.

    With ``workers > 1`` every sigma level reuses the same warm worker
    pool (one engine, one pool, many calls); pass an explicit ``engine``
    to control its lifetime. ``batch`` is forwarded to every
    :func:`measure_yield` (the vectorized-drain lane width).
    """
    return [
        measure_yield(factory, predicate, s, seeds, workers=workers,
                      engine=engine, batch=batch)
        for s in sigmas
    ]


def critical_sigma(
    factory: CircuitFactory,
    predicate: Predicate,
    target_yield: float = 0.9,
    sigma_hi: float = 8.0,
    seeds: Sequence[int] = tuple(range(20)),
    iterations: int = 6,
    workers: int = 1,
    engine: EngineSpec = None,
    batch: Union[int, str, None] = None,
    measure: Optional[Callable[..., YieldResult]] = None,
) -> Optional[float]:
    """Bisect for the smallest sigma at which yield drops below target.

    Returns None if the design already fails at sigma = 0 (a functional
    bug, not a robustness limit); returns ``sigma_hi`` if the design still
    meets the target there (more robust than the search range).
    ``workers`` and ``engine`` are forwarded to every underlying
    :func:`measure_yield`; with ``workers > 1`` all bisection iterations
    share one warm worker pool (exactly one pool is created for the whole
    search).

    ``measure`` swaps the per-sigma measurement for a drop-in replacement
    with :func:`measure_yield`'s signature. The yield service
    (:mod:`repro.serve`) passes its cached measurement here, so every
    bisection sample lands in — and is served from — the same
    structural-hash result cache as direct ``/yield`` requests.
    """
    if not 0 < target_yield <= 1:
        raise PylseError(f"target_yield must be in (0, 1], got {target_yield}")
    measure_fn = measure_yield if measure is None else measure

    def sample(sigma: float) -> float:
        return measure_fn(
            factory, predicate, sigma, seeds, workers=workers, engine=engine,
            batch=batch,
        ).yield_fraction

    if sample(0.0) < target_yield:
        return None
    if sample(sigma_hi) >= target_yield:
        return sigma_hi
    lo, hi = 0.0, sigma_hi
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if sample(mid) >= target_yield:
            lo = mid
        else:
            hi = mid
    return hi
