"""Time values and timing distributions.

Section 5.1 notes that "PyLSE allows you to express the timing behavior of an
SCE cell as a distribution", and Section 5.2 describes simulation-time
variability where "every individual propagation delay ... will have a small
amount of delay, by default taken from a Gaussian distribution, added to or
subtracted from it".

This module provides:

* :class:`Normal` and :class:`Uniform` delay distributions that can be used
  anywhere a firing delay is expected;
* :class:`VariabilitySpec`, the normalized form of the ``variability``
  argument to ``Simulation.simulate`` (a bool, a dict, or a callable);
* a seedable random source so simulations are reproducible.

All times are picoseconds, matching the paper's examples.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from .errors import PylseError

#: Fraction of the nominal delay used as the default Gaussian sigma when
#: ``variability=True`` is passed without further configuration.
DEFAULT_VARIABILITY_FRACTION = 0.05


class Distribution:
    """A delay distribution; subclasses implement :meth:`sample`."""

    mean: float

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def nominal(self) -> float:
        """The deterministic value used when variability is disabled."""
        return self.mean


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian-distributed delay, truncated at zero.

    >>> Normal(9.2, 0.5).nominal()
    9.2
    """

    mean: float
    stddev: float

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise PylseError(f"Normal delay mean must be >= 0, got {self.mean}")
        if self.stddev < 0:
            raise PylseError(f"Normal delay stddev must be >= 0, got {self.stddev}")

    def sample(self, rng: random.Random) -> float:
        return max(0.0, rng.gauss(self.mean, self.stddev))


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniformly-distributed delay over ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise PylseError(
                f"Uniform delay bounds must satisfy 0 <= low <= high, "
                f"got [{self.low}, {self.high}]"
            )

    @property
    def mean(self) -> float:  # type: ignore[override]
        return (self.low + self.high) / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


DelayLike = Union[float, int, Distribution]


def nominal_delay(delay: DelayLike) -> float:
    """Collapse a delay (number or distribution) to its deterministic value."""
    if isinstance(delay, Distribution):
        return delay.nominal()
    value = float(delay)
    if value < 0 or math.isnan(value) or math.isinf(value):
        raise PylseError(f"Delay must be a finite non-negative number, got {delay!r}")
    return value


def sample_delay(delay: DelayLike, rng: random.Random) -> float:
    """Sample a delay, honoring distributions."""
    if isinstance(delay, Distribution):
        return delay.sample(rng)
    return nominal_delay(delay)


#: Signature of a user-supplied variability function: it receives the nominal
#: delay and the node the pulse fires from, and returns the perturbed delay.
VariabilityFn = Callable[[float, "object"], float]


@dataclass
class VariabilitySpec:
    """Normalized view of ``Simulation.simulate(variability=...)``.

    ``variability`` may be:

    * ``False`` — deterministic simulation (the default);
    * ``True`` — Gaussian noise on every firing delay;
    * a ``dict`` with optional keys ``cell_types`` (iterable of cell-name
      strings), ``instances`` (iterable of node names or node objects),
      ``stddev`` (absolute sigma), ``fraction`` (sigma as a fraction of
      the nominal delay) and ``scheme`` (noise stream layout, below);
    * a callable ``f(delay, node) -> delay`` for full control.

    ``scheme`` selects how per-run noise streams are laid out:

    * ``"python"`` (default) — one ``random.Random(seed)`` stream consumed
      in global event order, the original reference behaviour;
    * ``"counter"`` — counter-based per-(seed, node) streams
      (:class:`repro.core.batchsim.CounterNoise`), whose draws are
      addressable by position and independent of cross-node event order.
      This is the scheme the vectorized Monte-Carlo drain uses, and the
      Monte-Carlo backends select it automatically for batch-eligible
      designs so batched and per-seed sweeps stay element-wise identical.
    """

    enabled: bool = False
    cell_types: Optional[frozenset[str]] = None
    instances: Optional[frozenset[str]] = None
    stddev: Optional[float] = None
    fraction: float = DEFAULT_VARIABILITY_FRACTION
    custom: Optional[VariabilityFn] = None
    rng: random.Random = field(default_factory=random.Random)
    scheme: str = "python"

    @classmethod
    def normalize(
        cls,
        variability: Union[bool, dict, VariabilityFn],
        seed: Optional[int] = None,
    ) -> "VariabilitySpec":
        rng = random.Random(seed)
        if variability is False or variability is None:
            return cls(enabled=False, rng=rng)
        if variability is True:
            return cls(enabled=True, rng=rng)
        if callable(variability):
            return cls(enabled=True, custom=variability, rng=rng)
        if isinstance(variability, dict):
            unknown = set(variability) - {
                "cell_types", "instances", "stddev", "fraction", "scheme"
            }
            if unknown:
                raise PylseError(
                    f"Unknown variability keys: {sorted(unknown)}; "
                    "expected 'cell_types', 'instances', 'stddev', "
                    "'fraction', 'scheme'"
                )
            scheme = variability.get("scheme", "python")
            if scheme not in ("python", "counter"):
                raise PylseError(
                    f"Unknown variability scheme {scheme!r}; "
                    "expected 'python' or 'counter'"
                )
            cell_types = variability.get("cell_types")
            instances = variability.get("instances")
            return cls(
                enabled=True,
                cell_types=frozenset(cls._names(cell_types)) if cell_types else None,
                instances=frozenset(cls._names(instances)) if instances else None,
                stddev=variability.get("stddev"),
                fraction=variability.get("fraction", DEFAULT_VARIABILITY_FRACTION),
                rng=rng,
                scheme=scheme,
            )
        raise PylseError(
            f"variability must be a bool, dict, or callable, got {type(variability).__name__}"
        )

    @staticmethod
    def _names(items: Iterable) -> Iterable[str]:
        for item in items:
            yield item if isinstance(item, str) else getattr(item, "name", str(item))

    def applies_to(self, cell_name: str, instance_name: str) -> bool:
        """Whether this spec perturbs delays of the given node."""
        if not self.enabled:
            return False
        if self.cell_types is None and self.instances is None:
            return True
        if self.cell_types is not None and cell_name in self.cell_types:
            return True
        if self.instances is not None and instance_name in self.instances:
            return True
        return False

    def perturb(self, delay: float, node: object) -> float:
        """Apply variability to a nominal firing delay."""
        if self.custom is not None:
            return max(0.0, float(self.custom(delay, node)))
        sigma = self.stddev if self.stddev is not None else delay * self.fraction
        return max(0.0, self.rng.gauss(delay, sigma))
