"""Input generators and wire utilities (Table 1 of the paper).

* :func:`inp_at` — produce pulses at each given time;
* :func:`inp` — produce a periodic pulse train;
* :func:`inspect` — give a wire a name for observation during simulation.

(``split`` lives with the cell library in :mod:`repro.sfq.functions`, since
it instantiates splitter cells.)
"""

from __future__ import annotations

from typing import Optional

from .circuit import working_circuit
from .element import InGen
from .errors import PylseError
from .wire import Wire


def inp_at(*times: float, name: Optional[str] = None) -> Wire:
    """Produce pulses at each time in ``times``; returns the driven wire.

    >>> a = inp_at(125, 175, 225, 275, name='A')  # doctest: +SKIP

    An empty ``times`` is allowed and produces a wire that never pulses —
    the encoding of a logical 0 operand in RSFQ designs.
    """
    return working_circuit().add_input(InGen(times), name)


def inp(
    start: float = 0.0,
    period: float = 0.0,
    n: int = 1,
    name: Optional[str] = None,
) -> Wire:
    """Produce ``n`` pulses starting at ``start``, one every ``period``.

    Matches Table 1: ``inp(start=50, period=50, n=6, name='CLK')`` pulses at
    50, 100, ..., 300.
    """
    if n < 1:
        raise PylseError(f"inp needs n >= 1, got {n}")
    if n > 1 and period <= 0:
        raise PylseError(f"inp with n={n} pulses needs a positive period")
    times = [start + i * period for i in range(n)]
    return working_circuit().add_input(InGen(times), name)


def inspect(wire: Wire, name: str) -> Wire:
    """Give a wire a name for observation during simulation."""
    if not isinstance(wire, Wire):
        raise PylseError(f"inspect expects a Wire, got {wire!r}")
    return wire.observe(name)
