"""Core PyLSE reproduction: machines, circuits, simulation, analysis."""

from .analysis import (
    SkewFinding,
    balance_report,
    circuit_graph,
    clock_skew,
    path_delays,
    total_jjs,
)
from .circuit import Circuit, fresh_circuit, reset_working_circuit, working_circuit
from .element import Element, InGen
from .errors import (
    FanoutError,
    HoleError,
    PriorInputViolation,
    PylseError,
    SimulationError,
    TransitionTimeViolation,
    UnconnectedInputError,
    WellFormednessError,
    WireError,
)
from .functional import Functional, hole
from .helpers import inp, inp_at, inspect
from .ir import CompiledCircuit, compile_circuit, structural_hash
from .htmlwave import events_to_html, save_html
from .machine import Configuration, PylseMachine, Transition, WILDCARD
from .montecarlo import YieldResult, critical_sigma, measure_yield, yield_curve
from .parallel import (
    YieldEngine,
    default_engine,
    resolve_workers,
    run_seeds_parallel,
    shutdown_default_engines,
)
from .serialize import circuit_from_json, circuit_to_json
from .simulation import Events, Simulation, TraceEntry, render_waveforms
from .statictiming import (
    MarginRecord,
    critical_path,
    slack_report,
    timing_margins,
    worst_slacks,
)
from .timing import Normal, Uniform, VariabilitySpec
from .transitional import Transitional, parse_transitions
from .vcd import events_to_vcd, save_vcd
from .wire import Wire

__all__ = [
    "Circuit",
    "CompiledCircuit",
    "compile_circuit",
    "structural_hash",
    "SkewFinding",
    "balance_report",
    "circuit_graph",
    "clock_skew",
    "MarginRecord",
    "TraceEntry",
    "circuit_from_json",
    "circuit_to_json",
    "critical_path",
    "events_to_html",
    "events_to_vcd",
    "path_delays",
    "save_html",
    "slack_report",
    "timing_margins",
    "worst_slacks",
    "save_vcd",
    "total_jjs",
    "YieldEngine",
    "YieldResult",
    "critical_sigma",
    "default_engine",
    "measure_yield",
    "resolve_workers",
    "run_seeds_parallel",
    "shutdown_default_engines",
    "yield_curve",
    "Configuration",
    "Element",
    "Events",
    "FanoutError",
    "Functional",
    "HoleError",
    "InGen",
    "Normal",
    "PriorInputViolation",
    "PylseError",
    "PylseMachine",
    "Simulation",
    "SimulationError",
    "Transition",
    "Transitional",
    "TransitionTimeViolation",
    "Uniform",
    "UnconnectedInputError",
    "VariabilitySpec",
    "WILDCARD",
    "WellFormednessError",
    "Wire",
    "WireError",
    "fresh_circuit",
    "hole",
    "inp",
    "inp_at",
    "inspect",
    "parse_transitions",
    "render_waveforms",
    "reset_working_circuit",
    "working_circuit",
]
