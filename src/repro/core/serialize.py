"""Structural JSON serialization of circuits.

A placed circuit of standard cells and input generators round-trips through
a documented JSON format (``repro-circuit-v1``), so elaborated designs can
be archived, diffed, and exchanged without re-running the Python that built
them. Functional holes wrap arbitrary callables and are rejected (their
behavior is code, not structure).

Timing distributions (``Normal``/``Uniform``) and per-instance overrides
(``firing_delay``, ``transition_time``, ``jjs``) are preserved.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Type

from .circuit import Circuit
from .element import InGen
from .errors import PylseError
from .ir import compile_circuit
from .timing import Normal, Uniform
from .transitional import Transitional
from .wire import Wire

if TYPE_CHECKING:
    from .montecarlo import YieldResult

FORMAT = "repro-circuit-v1"


def _encode_delay(value):
    if isinstance(value, Normal):
        return {"dist": "normal", "mean": value.mean, "stddev": value.stddev}
    if isinstance(value, Uniform):
        return {"dist": "uniform", "low": value.low, "high": value.high}
    return value


def _decode_delay(value):
    if isinstance(value, dict):
        if value.get("dist") == "normal":
            return Normal(value["mean"], value["stddev"])
        if value.get("dist") == "uniform":
            return Uniform(value["low"], value["high"])
        return {k: _decode_delay(v) for k, v in value.items()}
    return value


def _encode_overrides(overrides: Dict[str, object]) -> Dict[str, object]:
    encoded: Dict[str, object] = {}
    for key, value in overrides.items():
        if key == "transition_time":
            encoded[key] = {
                f"{src}:{trigger}": time
                for (src, trigger), time in value.items()  # type: ignore[union-attr]
            }
        elif key == "firing_delay":
            if isinstance(value, dict):
                encoded[key] = {k: _encode_delay(v) for k, v in value.items()}
            else:
                encoded[key] = _encode_delay(value)
        else:
            encoded[key] = value
    return encoded


def _decode_overrides(encoded: Dict[str, object]) -> Dict[str, object]:
    decoded: Dict[str, object] = {}
    for key, value in encoded.items():
        if key == "transition_time":
            decoded[key] = {
                tuple(pair.split(":", 1)): time
                for pair, time in value.items()  # type: ignore[union-attr]
            }
        elif key == "firing_delay":
            decoded[key] = _decode_delay(value)
        else:
            decoded[key] = value
    return decoded


def circuit_to_json(circuit: Circuit, indent: Optional[int] = 2) -> str:
    """Serialize a circuit's structure (cells, wiring, input schedules).

    Consumes the compiled IR's node order (elaboration order), tolerantly
    compiled so partially-built circuits still serialize for diffing.
    """
    compiled = compile_circuit(circuit, validate=False)
    nodes: List[dict] = []
    for node in compiled.nodes:
        element = node.element
        if isinstance(element, InGen):
            wire = node.output_wires["out"]
            nodes.append({
                "kind": "input",
                "name": node.name,
                "wire": wire.name,
                "observed_as": wire.observed_as,
                "times": list(element.times),
            })
            continue
        if not isinstance(element, Transitional):
            raise PylseError(
                f"Cannot serialize node {node.name}: Functional (hole) "
                "elements wrap arbitrary Python and have no structural form"
            )
        nodes.append({
            "kind": "cell",
            "name": node.name,
            "cell": type(element).__name__,
            "overrides": _encode_overrides(element.overrides),
            "inputs": {
                port: wire.name for port, wire in node.input_wires.items()
            },
            "outputs": {
                port: {"wire": wire.name, "observed_as": wire.observed_as}
                for port, wire in node.output_wires.items()
            },
        })
    return json.dumps({"format": FORMAT, "nodes": nodes}, indent=indent)


def _default_cell_registry() -> Dict[str, Type[Transitional]]:
    from ..sfq import BASIC_CELLS, EXTENSION_CELLS

    return {cls.__name__: cls for cls in BASIC_CELLS + EXTENSION_CELLS}


def circuit_from_json(
    text: str,
    extra_cells: Optional[Dict[str, Type[Transitional]]] = None,
) -> Circuit:
    """Rebuild a circuit from :func:`circuit_to_json` output.

    Custom cell classes (outside the standard library and extensions) must
    be supplied via ``extra_cells`` keyed by class name.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise PylseError(f"Invalid circuit JSON: {err}") from None
    if payload.get("format") != FORMAT:
        raise PylseError(
            f"Unsupported circuit format {payload.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    registry = _default_cell_registry()
    if extra_cells:
        registry.update(extra_cells)

    circuit = Circuit()
    wires: Dict[str, Wire] = {}

    def get_wire(name: str, observed_as: Optional[str] = None) -> Wire:
        if name not in wires:
            wires[name] = Wire(name)
        if observed_as and observed_as != name:
            wires[name].observe(observed_as)
        return wires[name]

    for spec in payload.get("nodes", []):
        kind = spec.get("kind")
        if kind == "input":
            wire = get_wire(spec["wire"], spec.get("observed_as"))
            element = InGen(spec["times"])
            circuit.add_node(element, [], [wire], name=spec.get("name"))
        elif kind == "cell":
            cell_name = spec["cell"]
            if cell_name not in registry:
                raise PylseError(
                    f"Unknown cell class {cell_name!r}; pass it via extra_cells"
                )
            cls = registry[cell_name]
            element = cls(**_decode_overrides(spec.get("overrides", {})))
            in_wires = [
                get_wire(spec["inputs"][port]) for port in element.inputs
            ]
            out_wires = [
                get_wire(
                    spec["outputs"][port]["wire"],
                    spec["outputs"][port].get("observed_as"),
                )
                for port in element.outputs
            ]
            circuit.add_node(element, in_wires, out_wires, name=spec.get("name"))
        else:
            raise PylseError(f"Unknown node kind {kind!r} in circuit JSON")
    return circuit


class SerializedCircuitFactory:
    """A picklable ``CircuitFactory`` over a ``repro-circuit-v1`` document.

    Stores only the JSON text, so instances ship cleanly to the process-pool
    workers of :mod:`repro.core.parallel` and rebuild a *fresh* circuit per
    call — the contract :func:`repro.core.montecarlo.measure_yield` requires
    of its factory. This is how the yield service (:mod:`repro.serve`) turns
    a client-submitted circuit into an engine task.
    """

    __slots__ = ("text",)

    def __init__(self, text: str):
        # Fail fast on malformed documents (and normalize str-vs-obj input
        # at the caller): a bad circuit should be rejected at request time,
        # not inside a worker process.
        if not isinstance(text, str):
            raise PylseError(
                f"SerializedCircuitFactory expects the circuit JSON text, "
                f"got {type(text).__name__}"
            )
        self.text = text

    def __call__(self) -> Circuit:
        return circuit_from_json(self.text)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SerializedCircuitFactory):
            return NotImplemented
        return self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"SerializedCircuitFactory({len(self.text)} chars)"


#: Format tag of the served yield-result JSON schema (docs/serving.md).
RESULT_FORMAT = "repro-yield-result-v1"


def yield_result_to_jsonable(result: "YieldResult") -> Dict[str, object]:
    """A stable, backend-independent JSON form of a :class:`YieldResult`.

    Covers exactly the fields that participate in ``YieldResult`` equality
    — sigma, counts, and the seed-keyed failures map — and deliberately
    omits the batched-drain diagnostics (``batched_lanes``,
    ``fallback_seeds``, ``divergence``): those describe *how* a backend ran
    the sweep, differ between equally-correct backends, and would break the
    byte-identical cache contract of :mod:`repro.serve`. Keys are sorted
    (failures by seed), so equal results always serialize to equal text.
    """
    return {
        "format": RESULT_FORMAT,
        "sigma": result.sigma,
        "runs": result.runs,
        "passed": result.passed,
        "mis_behaved": result.mis_behaved,
        "violations": result.violations,
        "yield": result.yield_fraction,
        # JSON object keys are strings; sorted by numeric seed so the
        # rendered text is independent of dict insertion order.
        "failures": {
            str(seed): kind
            for seed, kind in sorted(result.failures.items())
        },
    }


def yield_result_from_jsonable(doc: Dict[str, object]) -> "YieldResult":
    """Rebuild a :class:`YieldResult` from its JSON form.

    The inverse of :func:`yield_result_to_jsonable` on the fields that
    participate in equality: a round-tripped result compares equal to the
    original (the omitted batched-drain diagnostics are ``compare=False``,
    and per-cell ``stats`` are never serialized — a measurement that
    collected them cannot round-trip through this form). This is how the
    persistent disk tier of :mod:`repro.cache` rehydrates explorer
    results.
    """
    from .montecarlo import YieldResult

    if not isinstance(doc, dict):
        raise PylseError(
            f"yield-result document must be an object, "
            f"got {type(doc).__name__}"
        )
    if doc.get("format") != RESULT_FORMAT:
        raise PylseError(
            f"unsupported yield-result format {doc.get('format')!r} "
            f"(expected {RESULT_FORMAT!r})"
        )
    try:
        failures_doc = doc.get("failures", {})
        if not isinstance(failures_doc, dict):
            raise TypeError("'failures' must be an object")
        return YieldResult(
            sigma=float(doc["sigma"]),
            runs=int(doc["runs"]),
            passed=int(doc["passed"]),
            mis_behaved=int(doc["mis_behaved"]),
            violations=int(doc["violations"]),
            failures={
                int(seed): str(kind)
                for seed, kind in failures_doc.items()
            },
        )
    except (KeyError, TypeError, ValueError) as err:
        raise PylseError(
            f"malformed yield-result document: {err}"
        ) from None
