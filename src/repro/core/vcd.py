"""VCD (Value Change Dump) export of simulation events.

The paper plots pulses with matplotlib; for interoperability with standard
digital-waveform tooling (GTKWave and friends) this module renders the
``events`` dict as an IEEE 1364 VCD file. SFQ pulses are instantaneous, so
each pulse is drawn as a 1 for :data:`PULSE_WIDTH` picoseconds — purely a
display convention.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, TextIO

from .errors import PylseError
from .simulation import Events

#: Display width of a pulse, in ps (pure visualization; SFQ pulses are ~2 ps).
PULSE_WIDTH = 2.0

#: VCD timescale: one VCD tick = 0.1 ps, so one-decimal times stay exact.
TICKS_PER_PS = 10


def _identifier_codes():
    """Yield VCD short identifier codes: !, ", #, ... then !!, !", ..."""
    printable = [chr(c) for c in range(33, 127)]
    for length in itertools.count(1):
        for combo in itertools.product(printable, repeat=length):
            yield "".join(combo)


def events_to_vcd(events: Events, comment: str = "repro (PyLSE) simulation") -> str:
    """Serialize events as VCD text.

    Each wire becomes a 1-bit var; a pulse at time ``t`` raises the wire at
    ``t`` and lowers it ``PULSE_WIDTH`` later (clipped against the next
    pulse).
    """
    if not events:
        raise PylseError("No events to export")
    codes = _identifier_codes()
    var_code: Dict[str, str] = {name: next(codes) for name in events}

    lines: List[str] = [
        f"$comment {comment} $end",
        "$timescale 100fs $end",
        "$scope module repro $end",
    ]
    for name, code in var_code.items():
        safe = name.replace(" ", "_")
        lines.append(f"$var wire 1 {code} {safe} $end")
    lines += ["$upscope $end", "$enddefinitions $end", "$dumpvars"]
    for code in var_code.values():
        lines.append(f"0{code}")
    lines.append("$end")

    # Build the change list: (tick, value, code).
    changes: List[tuple] = []
    for name, times in events.items():
        code = var_code[name]
        for k, t in enumerate(times):
            rise = round(t * TICKS_PER_PS)
            fall = round((t + PULSE_WIDTH) * TICKS_PER_PS)
            if k + 1 < len(times):
                next_rise = round(times[k + 1] * TICKS_PER_PS)
                fall = min(fall, next_rise)
            if fall <= rise:
                fall = rise + 1
            changes.append((rise, 1, code))
            changes.append((fall, 0, code))

    last_tick = None
    for tick, value, code in sorted(changes):
        if tick != last_tick:
            lines.append(f"#{tick}")
            last_tick = tick
        lines.append(f"{value}{code}")
    return "\n".join(lines) + "\n"


def save_vcd(events: Events, path: str, comment: str = "repro (PyLSE) simulation") -> None:
    """Write :func:`events_to_vcd` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(events_to_vcd(events, comment))


def dump_vcd(events: Events, file: TextIO) -> None:
    """Write VCD text to an open file object."""
    file.write(events_to_vcd(events))
