"""Nodes: placed element instances with their port-to-wire bindings."""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

from .element import Element
from .errors import PylseError
from .wire import Wire


class Node:
    """An element instance placed in a circuit.

    A node binds each of its element's input ports to the wire driving it and
    each output port to the wire it drives. Nodes are created by
    :meth:`repro.core.circuit.Circuit.add_node`; user code normally never
    constructs one directly — the cell helper functions (``c``, ``jtl``,
    ``and_s``, ...) do it during elaboration-through-execution.
    """

    _id_counter = itertools.count()

    def __init__(
        self,
        element: Element,
        input_wires: Sequence[Wire],
        output_wires: Sequence[Wire],
        name: Optional[str] = None,
    ):
        if len(input_wires) != len(element.inputs):
            raise PylseError(
                f"{element.name}: expected {len(element.inputs)} input wire(s) "
                f"({', '.join(element.inputs)}), got {len(input_wires)}"
            )
        if len(output_wires) != len(element.outputs):
            raise PylseError(
                f"{element.name}: expected {len(element.outputs)} output wire(s) "
                f"({', '.join(element.outputs)}), got {len(output_wires)}"
            )
        self.element = element
        self.node_id = next(Node._id_counter)
        # Per-type naming (c0, s0, s1, jtl0, ...) is assigned by the circuit;
        # this is only the fallback for nodes created outside one.
        self.name = name if name is not None else f"{element.name.lower()}{self.node_id}"
        self.input_wires: Dict[str, Wire] = dict(zip(element.inputs, input_wires))
        self.output_wires: Dict[str, Wire] = dict(zip(element.outputs, output_wires))

    def port_of_input_wire(self, wire: Wire) -> str:
        """Which input port the given wire drives on this node."""
        for port, bound in self.input_wires.items():
            if bound is wire:
                return port
        raise PylseError(f"Wire {wire!r} does not drive any input of node {self.name}")

    def __repr__(self) -> str:
        ins = ", ".join(f"{p}={w.name}" for p, w in self.input_wires.items())
        outs = ", ".join(f"{p}={w.name}" for p, w in self.output_wires.items())
        return f"Node({self.name}: {self.element.name} in[{ins}] out[{outs}])"

    @classmethod
    def _reset_ids(cls) -> None:
        cls._id_counter = itertools.count()
