"""The PyLSE Machine: Mealy machines with timed, prioritized transitions.

This module is a direct implementation of Section 3 of the paper:

* :class:`Transition` — one edge with its Trigger (input, priority,
  transition time), Firing Outputs (output -> firing delay), and Past
  Constraints (input-or-``'*'`` -> minimum distance);
* :class:`PylseMachine` — the tuple ``M = <Q, q_init, Sigma, Lambda, delta,
  mu, theta>`` of Definition 3.1;
* :class:`Configuration` — ``kappa = <q, tau_done, Theta>``;
* :meth:`PylseMachine.step` — the Transition Relation (rules Normal-kappa,
  Error-kappa Tran and Error-kappa Cons of Figure 6);
* :meth:`PylseMachine.dispatch` — the Dispatch Relation (simultaneous inputs
  handled in priority order);
* :meth:`PylseMachine.trace` — the Trace Relation (folding dispatch over an
  input sequence and accumulating outputs).

The machine itself is purely functional: ``step`` and friends take and return
configurations, never mutating shared state. The stateful wrapper that sits
in a circuit is :class:`repro.core.transitional.Transitional`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import (
    PriorInputViolation,
    PylseError,
    TransitionTimeViolation,
    WellFormednessError,
)
from .timing import DelayLike, nominal_delay

#: Wildcard symbol in past constraints: "any input".
WILDCARD = "*"


def expand_constraints(
    transition: "Transition", inputs: Sequence[str]
) -> Iterable[Tuple[str, float]]:
    """Expand a transition's past constraints over the wildcard.

    An explicit per-input constraint overrides the wildcard for that input.
    Shared by the simulator (:meth:`PylseMachine.step`) and the static
    analyzer (:mod:`repro.lint`), which also works on transition lists that
    never passed machine validation.
    """
    constraints = transition.past_constraints
    if WILDCARD in constraints:
        star = constraints[WILDCARD]
        for sym in inputs:
            yield sym, constraints.get(sym, star)
    else:
        for sym, dist in constraints.items():
            yield sym, dist


@dataclass(frozen=True)
class Transition:
    """A fully normalized PyLSE Machine edge (Figure 4).

    ``firing`` maps each output emitted by this edge to its firing delay
    (``tau_fire``). ``past_constraints`` maps each constrained input (or the
    wildcard ``'*'``) to the minimum time (``tau_dist``) that must have
    elapsed since that input was last seen.
    """

    id: int
    source: str
    trigger: str
    dest: str
    priority: int
    transition_time: float = 0.0
    firing: Mapping[str, DelayLike] = field(default_factory=dict)
    past_constraints: Mapping[str, float] = field(default_factory=dict)

    def is_self_loop(self) -> bool:
        return self.source == self.dest

    @property
    def label(self) -> str:
        """Canonical transition name, e.g. ``idle--clk->a_and_b``.

        ``delta`` is a function, so ``(source, trigger)`` — and therefore the
        label — is unique within a machine. The observability layer
        (:mod:`repro.obs`) keys per-cell transition counters by this name.
        """
        return f"{self.source}--{self.trigger}->{self.dest}"

    def __str__(self) -> str:
        fire = ",".join(self.firing) or "{}"
        return (
            f"{self.source} --{self.trigger}[p{self.priority}, "
            f"tt={self.transition_time:g}]/{fire}--> {self.dest}"
        )


@dataclass(frozen=True)
class Configuration:
    """``kappa = <q, tau_done, Theta>`` from Section 3.1.

    ``tau_done`` is the end of the unstable (transitioning) period; ``theta``
    maps each input symbol to the last time it was seen (``-inf`` initially).
    """

    state: str
    tau_done: float
    theta: Mapping[str, float]

    def last_seen(self, symbol: str) -> float:
        return self.theta[symbol]


class PylseMachine:
    """``M = <Q, q_init, Sigma, Lambda, delta, mu, theta>`` (Definition 3.1).

    Construction validates well-formedness per Section 4.2:

    * transitions reference only declared states, inputs, and outputs;
    * the machine is *fully specified*: for every state, every input has an
      edge (``delta`` is a total function);
    * at least one transition fires an output;
    * the initial state exists (conventionally ``idle``).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        transitions: Sequence[Transition],
        initial: str = "idle",
    ):
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self.transitions: Tuple[Transition, ...] = tuple(transitions)
        self.initial = initial
        self.states: Tuple[str, ...] = self._collect_states()
        self._delta: Dict[Tuple[str, str], Transition] = {}
        self._validate()
        # Precomputed per-edge dispatch entries for the simulator hot loop:
        # (dest, transition_time, firing items, expanded past constraints,
        # transition, transition label). Wildcard constraints are expanded
        # here, once, instead of per step; the label rides along so the
        # observability layer never recomputes names in the inner loop.
        self._fast: Dict[
            Tuple[str, str],
            Tuple[str, float, Tuple[Tuple[str, DelayLike], ...],
                  Tuple[Tuple[str, float], ...], Transition, str],
        ] = {
            key: (
                t.dest,
                t.transition_time,
                tuple(t.firing.items()),
                tuple(self._constraint_items(t)),
                t,
                t.label,
            )
            for key, t in self._delta.items()
        }
        #: theta template for initial configurations (copied, never mutated).
        self._init_theta: Dict[str, float] = {
            sym: -math.inf for sym in self.inputs
        }

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _collect_states(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for t in self.transitions:
            for state in (t.source, t.dest):
                if state not in seen:
                    seen.append(state)
        return tuple(seen)

    def _validate(self) -> None:
        if not self.inputs:
            raise WellFormednessError(f"{self.name}: machine has no inputs")
        if not self.transitions:
            raise WellFormednessError(f"{self.name}: machine has no transitions")
        if self.initial not in self.states:
            raise WellFormednessError(
                f"{self.name}: initial state {self.initial!r} does not appear in any "
                f"transition (states: {sorted(self.states)})"
            )
        input_set = set(self.inputs)
        output_set = set(self.outputs)
        fires_something = False
        for t in self.transitions:
            if t.trigger not in input_set:
                raise WellFormednessError(
                    f"{self.name}: transition {t.id} triggered by unknown input "
                    f"{t.trigger!r} (inputs: {sorted(input_set)})"
                )
            for out in t.firing:
                if out not in output_set:
                    raise WellFormednessError(
                        f"{self.name}: transition {t.id} fires unknown output "
                        f"{out!r} (outputs: {sorted(output_set)})"
                    )
                nominal_delay(t.firing[out])  # validates the delay value
            for sym, dist in t.past_constraints.items():
                if sym != WILDCARD and sym not in input_set:
                    raise WellFormednessError(
                        f"{self.name}: transition {t.id} constrains unknown input "
                        f"{sym!r} (use inputs or '*')"
                    )
                if dist < 0 or math.isnan(dist) or math.isinf(dist):
                    raise WellFormednessError(
                        f"{self.name}: transition {t.id} has invalid past-constraint "
                        f"time {dist!r} for {sym!r}"
                    )
            if t.transition_time < 0:
                raise WellFormednessError(
                    f"{self.name}: transition {t.id} has negative transition time "
                    f"{t.transition_time}"
                )
            if t.firing:
                fires_something = True
            key = (t.source, t.trigger)
            if key in self._delta:
                raise WellFormednessError(
                    f"{self.name}: transitions {self._delta[key].id} and {t.id} both "
                    f"leave state {t.source!r} on input {t.trigger!r}; delta must be "
                    "a function (use priorities on distinct triggers instead)"
                )
            self._delta[key] = t
        if not fires_something:
            raise WellFormednessError(
                f"{self.name}: no transition ever fires an output"
            )
        missing = [
            (state, sym)
            for state in self.states
            for sym in self.inputs
            if (state, sym) not in self._delta
        ]
        if missing:
            pretty = ", ".join(f"({s!r}, {i!r})" for s, i in missing[:8])
            more = f" and {len(missing) - 8} more" if len(missing) > 8 else ""
            raise WellFormednessError(
                f"{self.name}: machine is not fully specified; missing transitions "
                f"for {pretty}{more}"
            )

    # ------------------------------------------------------------------
    # semantics (Figure 6)
    # ------------------------------------------------------------------
    def initial_configuration(self) -> Configuration:
        """``kappa_init = <q_init, 0, {sigma -> -inf}>``."""
        return Configuration(
            state=self.initial,
            tau_done=0.0,
            theta=self._init_theta.copy(),
        )

    def delta(self, state: str, symbol: str) -> Transition:
        """The transition function; total by construction."""
        try:
            return self._delta[(state, symbol)]
        except KeyError:
            raise PylseError(
                f"{self.name}: no transition from {state!r} on {symbol!r}"
            ) from None

    def step(
        self, config: Configuration, symbol: str, tau_arr: float
    ) -> Tuple[Configuration, List[Tuple[str, DelayLike]]]:
        """The Transition Relation: one input pulse at time ``tau_arr``.

        Implements Normal-kappa on success; raises
        :class:`TransitionTimeViolation` (Error-kappa Tran) or
        :class:`PriorInputViolation` (Error-kappa Cons) when the pulse's
        timing is illegal — the simulation-level rendering of entering
        ``q_err``.

        Returns the successor configuration and the fired outputs as
        ``(output, firing delay)`` pairs; the caller turns delays into
        absolute pulse times.
        """
        transition = self.delta(config.state, symbol)
        if tau_arr < config.tau_done:
            raise TransitionTimeViolation(
                f"Transition time violation on FSM '{self.name}'. "
                f"Input '{symbol}' arrived at {tau_arr} while the machine was "
                f"still transitioning into state '{config.state}' (stable at "
                f"{config.tau_done}); pulses are illegal during the "
                f"'transition_time' window."
            )
        for constrained, tau_dist in self._constraint_items(transition):
            last = config.theta[constrained]
            if tau_arr < last + tau_dist:
                too_soon = last + tau_dist - tau_arr
                raise PriorInputViolation(
                    f"Prior input violation on FSM '{self.name}'. A constraint on "
                    f"transition '{transition.id}', triggered at time {tau_arr}, "
                    f"given via the 'past_constraints' field says it is an error "
                    f"to trigger this transition if input '{constrained}' was seen "
                    f"as recently as {tau_dist} time units ago. It was last seen "
                    f"at {last}, which is {too_soon} time units too soon."
                )
        next_config = Configuration(
            state=transition.dest,
            tau_done=transition.transition_time + tau_arr,
            theta={**config.theta, symbol: tau_arr},
        )
        return next_config, list(transition.firing.items())

    def _constraint_items(
        self, transition: Transition
    ) -> Iterable[Tuple[str, float]]:
        """Expand a transition's past constraints over the wildcard."""
        return expand_constraints(transition, self.inputs)

    def choose(
        self,
        state: str,
        symbols: FrozenSet[str] | Iterable[str],
        rng: Optional[random.Random] = None,
    ) -> str:
        """Pick the next symbol to dispatch from a simultaneous set.

        This is the ``argmin`` over transition priorities in the Dispatch
        Relation. Ties are broken nondeterministically in the formal
        semantics; here, a seeded ``rng`` reproduces that, and without one
        the tie-break is deterministic (input declaration order) so
        simulations are repeatable.
        """
        candidates = sorted(
            symbols, key=lambda sym: self.inputs.index(sym)
        )
        if not candidates:
            raise PylseError(f"{self.name}: dispatch called with no inputs")
        best = min(self.delta(state, sym).priority for sym in candidates)
        tied = [sym for sym in candidates if self.delta(state, sym).priority == best]
        if rng is not None and len(tied) > 1:
            return rng.choice(tied)
        return tied[0]

    def dispatch(
        self,
        config: Configuration,
        symbols: Iterable[str],
        tau_arr: float,
        rng: Optional[random.Random] = None,
    ) -> Tuple[Configuration, List[Tuple[str, float]]]:
        """The Dispatch + Trace relations for one simultaneous input set.

        Processes every symbol in ``symbols`` (all arriving at ``tau_arr``)
        in priority order, accumulating outputs as ``(output, absolute pulse
        time)`` pairs using the nominal firing delays.
        """
        remaining = set(symbols)
        unknown = remaining - set(self.inputs)
        if unknown:
            raise PylseError(
                f"{self.name}: dispatch got unknown input(s) {sorted(unknown)}"
            )
        outs: List[Tuple[str, float]] = []
        while remaining:
            symbol = self.choose(config.state, frozenset(remaining), rng)
            remaining.discard(symbol)
            config, fired = self.step(config, symbol, tau_arr)
            outs.extend(
                (out, tau_arr + nominal_delay(delay)) for out, delay in fired
            )
        return config, outs

    def trace(
        self,
        pulses: Iterable[Tuple[str, float]],
        rng: Optional[random.Random] = None,
    ) -> List[Tuple[str, float]]:
        """Run the machine over a full input sequence from its initial
        configuration, returning all ``(output, time)`` firings.

        ``pulses`` is an iterable of ``(input symbol, arrival time)``; pulses
        sharing an arrival time are grouped into one simultaneous set, per
        the Trace Relation.
        """
        ordered = sorted(pulses, key=lambda p: p[1])
        config = self.initial_configuration()
        outs: List[Tuple[str, float]] = []
        index = 0
        while index < len(ordered):
            tau_arr = ordered[index][1]
            group = set()
            while index < len(ordered) and ordered[index][1] == tau_arr:
                group.add(ordered[index][0])
                index += 1
            config, fired = self.dispatch(config, group, tau_arr, rng)
            outs.extend(fired)
        return sorted(outs, key=lambda p: p[1])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.source == state]

    def reachable_states(self) -> FrozenSet[str]:
        """States reachable from the initial state via any input sequence.

        A fully-specified machine may still contain unreachable states (no
        path of transitions leads there from ``q_init``); the static
        analyzer (:mod:`repro.lint`, rule PL101) reports them.
        """
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for sym in self.inputs:
                dest = self._delta[(state, sym)].dest
                if dest not in seen:
                    seen.add(dest)
                    stack.append(dest)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"PylseMachine({self.name!r}, {len(self.states)} states, "
            f"{len(self.transitions)} transitions)"
        )
