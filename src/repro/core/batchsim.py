"""Vectorized multi-seed Monte-Carlo: the batched structure-of-arrays drain.

Section 5.2's yield sweeps run the same design once per variability seed.
The per-seed drains differ only in the Gaussian noise added to each firing
delay, so instead of N full event-loop passes this module runs **one**
batched pass in which every pending pulse carries a ``float64[N]`` vector
of per-seed timestamps and every delay resolution is one vectorized numpy
draw across all N lanes at once.

The contract is strict: batched results are **element-wise identical** to N
sequential ``simulate()`` calls (outcomes, event times, metrics — bit for
bit; ``tests/test_differential.py`` locks this). Two mechanisms make that
possible:

* **Counter-based noise streams** (:class:`CounterNoise`). Noise is drawn
  from independent per-``(seed, node, kind)`` streams derived via
  ``numpy.random.SeedSequence`` and a splitmix64 counter construction, so
  a draw is addressed by *position within its node's stream*, not by
  global event order. The sequential drain consumes the very same streams
  when ``variability={"scheme": "counter"}`` is passed (the Monte-Carlo
  backends select that scheme automatically for batch-eligible designs),
  which is what lets a width-N batch and a width-1 replay produce the same
  bits for the same seed.

* **Conformance tracking + replay.** The batch steers control flow along
  the *nominal* (noise-free) schedule. Each lane is checked, group by
  group, against three conformance rules: every pulse merged into a
  simultaneous group must coincide lane-wise (grouping), successive groups
  at a node must stay strictly ordered lane-wise (order), and a zero-delay
  firing pushed to an earlier-keyed node is flagged as a potential
  same-instant reordering (coincidence). Lanes that fail a rule — or that
  take a different priority tie-break than the batch majority, or whose
  timing-constraint checks trip — are masked out of the batch and replayed
  individually on the reference drain. A replay is definitionally exact,
  so a false-positive divergence costs only time, never correctness.

The module is deliberately layered below :mod:`repro.core.simulation` and
:mod:`repro.core.parallel`: it imports neither (the replay ``Simulation``
arrives duck-typed as an argument), and the outcome tokens defined here
are re-exported by ``parallel`` so both spellings stay importable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ._np import np
from .errors import PylseError, SimulationError
from .ir import CompiledCircuit, compile_circuit, dispatch_arrays
from .timing import (
    Distribution,
    Normal,
    Uniform,
    VariabilitySpec,
    nominal_delay,
    sample_delay,
)

#: Outcome tokens, one per seed (re-exported by :mod:`repro.core.parallel`,
#: which historically defined them). ``OK`` counts toward yield.
OK = "ok"
MIS_BEHAVED = "mis-behaved"
VIOLATION = "violation"

#: Default cap on the lane count of one batched drain pass. Wider batches
#: amortize the per-group Python overhead over more seeds, but past a few
#: hundred lanes the vectors stop fitting hot cache lines and divergence
#: replays get batched less usefully; 256 is the measured sweet spot on
#: the registry designs (see docs/performance.md).
DEFAULT_MAX_BATCH = 256

# -- counter-stream constants ------------------------------------------
#: Per-(node, kind) stream kinds: Gaussian draws, uniform draws, and
#: priority tie-breaks each advance an independent position counter.
_NORMAL, _UNIFORM, _TIE = 0, 1, 2

_GOLDEN = 0x9E3779B97F4A7C15
_M64 = (1 << 64) - 1
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_TWO_PI = 2.0 * np.pi

#: seed -> SeedSequence-derived 64-bit root, cached so every backend
#: (batched, sequential counter-scheme, replay) derives identical streams
#: without re-hashing the entropy per call.
_ROOT_CACHE: Dict[int, int] = {}


def _mix64(x: "np.ndarray") -> "np.ndarray":
    """The splitmix64 finalizer over a uint64 array (wrapping multiplies)."""
    x = x ^ (x >> np.uint64(30))
    x = x * _C1
    x = x ^ (x >> np.uint64(27))
    x = x * _C2
    return x ^ (x >> np.uint64(31))


def _u01(bits: "np.ndarray") -> "np.ndarray":
    """Map uint64 bits to doubles in the open interval (0, 1)."""
    return ((bits >> np.uint64(11)).astype(np.float64) + 0.5) * 2.0 ** -53


def _root(seed: Optional[int]) -> "np.uint64":
    """The 64-bit stream root for one seed (None: fresh entropy)."""
    if seed is None:
        return np.random.SeedSequence().generate_state(1, np.uint64)[0]
    # SeedSequence entropy must be non-negative; fold negatives in evenly.
    entropy = 2 * seed if seed >= 0 else -2 * seed - 1
    root = _ROOT_CACHE.get(entropy)
    if root is None:
        root = _ROOT_CACHE[entropy] = np.random.SeedSequence(
            entropy
        ).generate_state(1, np.uint64)[0]
    return root


class CounterNoise:
    """Order-invariant noise streams for N seeds, one lane per seed.

    Each draw is addressed by ``(seed root, node index, kind, position)``
    and computed as two rounds of splitmix64 mixing, so the value of lane
    ``l``'s j-th draw at node ``i`` does not depend on batch width or on
    the order other nodes drew in. All vector helpers return ``float64[N]``
    arrays whose lane ``l`` is bit-identical to what a width-1 instance
    built from ``[seeds[l]]`` produces at the same positions — the
    invariant the batched == sequential property rests on.
    """

    __slots__ = ("n", "_roots", "_keys", "_pos")

    def __init__(self, roots: "np.ndarray"):
        self.n = len(roots)
        self._roots = roots
        self._keys: Dict[Tuple[int, int], "np.ndarray"] = {}
        self._pos: Dict[Tuple[int, int], int] = {}

    @classmethod
    def for_seeds(cls, seeds: Sequence[Optional[int]]) -> "CounterNoise":
        roots = np.empty(len(seeds), dtype=np.uint64)
        for lane, seed in enumerate(seeds):
            roots[lane] = _root(seed)
        return cls(roots)

    # -- raw draws -----------------------------------------------------
    def _stream_key(self, index: int, kind: int) -> "np.ndarray":
        key = self._keys.get((index, kind))
        if key is None:
            salt = np.uint64((_GOLDEN * (3 * index + kind + 1)) & _M64)
            key = self._keys[(index, kind)] = _mix64(self._roots + salt)
        return key

    def _bits(self, index: int, kind: int) -> "np.ndarray":
        """The next uint64 draw of every lane on one (node, kind) stream."""
        key = self._stream_key(index, kind)
        position = self._pos.get((index, kind), 0)
        self._pos[(index, kind)] = position + 1
        return _mix64(key + np.uint64((_GOLDEN * (position + 1)) & _M64))

    def normal(self, index: int) -> "np.ndarray":
        """Standard-normal draw per lane (Box-Muller, two stream steps)."""
        u1 = _u01(self._bits(index, _NORMAL))
        u2 = _u01(self._bits(index, _NORMAL))
        return np.sqrt(-2.0 * np.log(u1)) * np.cos(_TWO_PI * u2)

    def uniform(self, index: int) -> "np.ndarray":
        """Uniform (0, 1) draw per lane."""
        return _u01(self._bits(index, _UNIFORM))

    def tie(self, index: int, choices: int) -> "np.ndarray":
        """Per-lane pick in ``range(choices)`` for a priority tie-break."""
        return (self._bits(index, _TIE) % np.uint64(choices)).astype(np.int64)

    # -- delay resolution ----------------------------------------------
    def resolve(
        self,
        delay,
        index: int,
        spec: VariabilitySpec,
        applies: bool,
    ) -> Union["np.ndarray", float, None]:
        """Resolve one firing delay across all lanes.

        Returns a ``float64[N]`` vector when a draw was consumed, a plain
        float when the delay is a constant the spec does not perturb (no
        draw — callers broadcast), or None for a custom ``Distribution``
        subclass the counter streams cannot reproduce (the sequential
        caller falls back to the python-rng sample; batch-eligibility
        excludes such designs from the batched drain entirely).
        """
        if isinstance(delay, Normal):
            return np.maximum(0.0, delay.mean + delay.stddev * self.normal(index))
        if isinstance(delay, Uniform):
            return delay.low + (delay.high - delay.low) * self.uniform(index)
        if isinstance(delay, Distribution):
            return None
        value = float(delay)
        if not applies:
            return value
        sigma = (
            spec.stddev if spec.stddev is not None else value * spec.fraction
        )
        return np.maximum(0.0, value + sigma * self.normal(index))

    def resolve_scalar(self, delay, index, node, spec, rng) -> float:
        """Width-1 resolution for the sequential counter-scheme drain.

        Same streams, same positions, same float operations as the batched
        :meth:`resolve` — ``float(vector[0])`` of a width-1 vector IS the
        lane value a batch would compute — so a replayed seed reproduces
        its batched lane exactly. ``rng`` only backs custom distributions.
        """
        applies = spec.applies_to(node.element.name, node.name)
        value = self.resolve(delay, index, spec, applies)
        if value is None:
            return sample_delay(delay, rng)
        if isinstance(value, float):
            return value
        return float(value[0])

    def tie_rng(self, index: int) -> "_CounterTieRng":
        """A per-node tie-break chooser backed by this instance's streams."""
        return _CounterTieRng(self, index)


class _CounterTieRng:
    """Adapter giving :meth:`PylseMachine.choose` its ``rng.choice`` shape.

    Installed per node by the sequential counter-scheme drain; consumes
    the node's ``_TIE`` stream only when an actual tie occurs, mirroring
    exactly when the batched drain consumes it.
    """

    __slots__ = ("_noise", "_index")

    def __init__(self, noise: CounterNoise, index: int):
        self._noise = noise
        self._index = index

    def choice(self, tied):
        return tied[int(self._noise.tie(self._index, len(tied))[0])]


# ----------------------------------------------------------------------
# Batch eligibility
# ----------------------------------------------------------------------
def batch_eligible(compiled: CompiledCircuit) -> bool:
    """Whether the batched drain (and counter scheme) covers this design.

    Eligible means every non-input node is a :class:`Transitional` machine
    (``Functional`` holes run arbitrary Python per dispatch) and every
    firing delay is a constant, :class:`Normal`, or :class:`Uniform` — the
    delay shapes the counter streams can resolve lane-wise. The answer is
    memoized on the compile cache; Monte-Carlo backends use it to pick the
    noise scheme, so ineligible designs keep the original python-rng
    semantics on every backend.
    """
    cached = compiled._cache.get("batch_eligible")
    if cached is None:
        cached = compiled._cache["batch_eligible"] = _compute_eligible(compiled)
    return cached


def _compute_eligible(compiled: CompiledCircuit) -> bool:
    from .transitional import Transitional

    for nd in compiled.dispatch:
        if nd.is_input:
            continue
        element = compiled.nodes[nd.index].element
        if not isinstance(element, Transitional):
            return False
        for entry in element.machine._fast.values():
            for _out, delay in entry[2]:
                if isinstance(delay, Distribution) and not isinstance(
                    delay, (Normal, Uniform)
                ):
                    return False
    return True


# ----------------------------------------------------------------------
# Divergence observability
# ----------------------------------------------------------------------
@dataclass
class BatchReport:
    """What the batched drain did for one seed list (picklable, mergeable).

    ``batched_lanes`` counts seeds that completed entirely inside a batch;
    ``fallback_seeds`` lists, in seed order, every seed classified by the
    sequential drain instead (divergence replays, calibration seeds,
    ineligible designs); ``divergence`` tallies why, keyed by cause
    (``grouping`` / ``order`` / ``coincidence`` / ``tie-break`` /
    ``violation`` / ``overflow`` / ``error`` / ``ineligible``).
    """

    batched_lanes: int = 0
    fallback_seeds: List[int] = field(default_factory=list)
    divergence: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "BatchReport") -> None:
        self.batched_lanes += other.batched_lanes
        self.fallback_seeds.extend(other.fallback_seeds)
        for cause, count in other.divergence.items():
            self.divergence[cause] = self.divergence.get(cause, 0) + count

    def count(self, cause: str, n: int = 1) -> None:
        if n:
            self.divergence[cause] = self.divergence.get(cause, 0) + n


def resolve_batch(batch: Union[int, str, None], n_seeds: int) -> int:
    """Normalize a ``batch=`` argument to a concrete lane count.

    ``None`` / ``"auto"`` pick ``min(n_seeds, DEFAULT_MAX_BATCH)``; ``0``
    disables batching (per-seed counter-scheme reference); a positive int
    is an explicit width. Bools and negatives are rejected.
    """
    if batch is None or batch == "auto":
        return min(n_seeds, DEFAULT_MAX_BATCH)
    if isinstance(batch, bool) or not isinstance(batch, int) or batch < 0:
        raise PylseError(
            f"batch must be a non-negative integer, 'auto', or None, "
            f"got {batch!r}"
        )
    return batch


# ----------------------------------------------------------------------
# The batched drain
# ----------------------------------------------------------------------
class _DrainResult:
    """Raw artifacts of one batched pass, before per-lane finalization."""

    __slots__ = (
        "active", "cause", "series_acc", "processed", "groups",
        "input_pulses", "input_pushes", "stats_groups", "heap_log",
    )

    def __init__(self, n: int):
        self.active = np.ones(n, dtype=bool)
        self.cause: List[Optional[str]] = [None] * n
        self.series_acc: Dict[str, list] = {}
        self.processed = 0
        self.groups = 0
        self.input_pulses = 0
        self.input_pushes = 0
        #: per group: (node name, cell name, deduped port count,
        #: transition labels, per-firing resolved delays) — stats only.
        self.stats_groups: Optional[list] = None
        #: per group: (heap key, lane times, raw entries popped, pushes).
        self.heap_log: Optional[list] = None


def _zero_mask(resolved, n: int) -> Optional["np.ndarray"]:
    """Lanes whose resolved delay is exactly zero (None when impossible)."""
    if isinstance(resolved, float):
        return np.ones(n, dtype=bool) if resolved == 0.0 else None
    mask = resolved == 0.0
    return mask if mask.any() else None


def _drain(
    compiled: CompiledCircuit,
    spec: VariabilitySpec,
    noise: CounterNoise,
    collect_stats: bool,
    max_pulses: Optional[int],
) -> _DrainResult:
    """One batched pass over the whole design; see the module docstring.

    Control flow (which transition fires, in what order groups dispatch)
    follows the nominal noise-free schedule; per-lane timestamps ride
    along as ``float64[N]`` vectors. Lanes whose own schedule would have
    differed are masked out (``result.cause[lane]``) for replay.
    """
    n = noise.n
    nodes = compiled.nodes
    labels = compiled.labels
    arrays = dispatch_arrays(compiled)
    node_key = arrays.node_key
    result = _DrainResult(n)
    if collect_stats:
        result.stats_groups = []
        result.heap_log = []
    active = result.active
    cause = result.cause

    def diverge(mask, why: str) -> None:
        newly = mask & active
        if newly.any():
            active[newly] = False
            for lane in np.nonzero(newly)[0]:
                cause[lane] = why

    # -- static per-node lookups (cheap; rebuilt per drain) -------------
    num = len(nodes)
    out_slots: List[Optional[dict]] = [None] * num
    for index in range(num):
        slots = {}
        for s in arrays.slots(index):
            slots[arrays.out_port[s]] = (
                arrays.out_dest[s],
                arrays.out_dest_key[s],
                arrays.out_dest_port[s],
                labels[arrays.out_wire[s]],
            )
        out_slots[index] = slots
    applies: List[Optional[bool]] = [None] * num

    # -- per-node machine state (lane-vectorized, lazily created) -------
    state: List[Optional[str]] = [None] * num
    tau_done: List[Optional["np.ndarray"]] = [None] * num
    theta: List[Optional[dict]] = [None] * num
    last_t: List[Optional["np.ndarray"]] = [None] * num

    # -- event series accumulators, label first-occurrence order --------
    series_acc = result.series_acc
    for label in labels:
        if label not in series_acc:
            series_acc[label] = []

    # -- seed the nominal heap from the input schedules -----------------
    # Entries are (t_nom, dest key, seq, dest index, port, lane times,
    # coincidence-risk mask); heapq never compares past seq.
    heap: list = []
    seq = 0
    for i in compiled.input_ids:
        node = nodes[i]
        o = compiled.dispatch[i].outs[0]
        acc = series_acc[labels[o.wire_id]]
        if o.dest < 0:
            for t in node.element.times:  # type: ignore[attr-defined]
                acc.append(float(t))
                result.input_pulses += 1
            continue
        dkey = node_key[o.dest]
        for t in node.element.times:  # type: ignore[attr-defined]
            t = float(t)
            acc.append(t)
            heappush(heap, (t, dkey, seq, o.dest, o.dest_port, t, None))
            seq += 1
            result.input_pushes += 1
            result.input_pulses += 1

    limit = float("inf") if max_pulses is None else max_pulses
    while heap:
        if not active.any():
            break  # every lane replays anyway; the rest of the pass is moot
        if result.processed >= limit:
            diverge(np.ones(n, dtype=bool), "overflow")
            break
        t_nom, key, _s, index, port, T0, risk0 = heappop(heap)
        entries = [(port, T0, risk0)]
        while heap and heap[0][0] == t_nom and heap[0][1] == key:
            e = heappop(heap)
            entries.append((e[4], e[5], e[6]))
        T_ref = T0

        # R3 — a zero-delay push to an earlier-keyed node may regroup.
        # R1 — every entry merged by the nominal schedule must coincide
        # lane-wise, duplicates included.
        for _p, T, risk in entries:
            if risk is not None:
                diverge(risk, "coincidence")
        for _p, T, _r in entries[1:]:
            if isinstance(T, float) and isinstance(T_ref, float):
                if T != T_ref:  # pure-nominal entries; cannot differ
                    diverge(np.ones(n, dtype=bool), "grouping")
            else:
                mask = T != T_ref
                if mask.any():
                    diverge(mask, "grouping")

        ports = []
        seen = set()
        for p, _T, _r in entries:
            if p not in seen:
                seen.add(p)
                ports.append(p)

        element = nodes[index].element
        machine = element.machine
        if state[index] is None:
            state[index] = machine.initial
            tau_done[index] = np.zeros(n)
            theta[index] = {
                sym: np.full(n, -np.inf) for sym in machine.inputs
            }
            last_t[index] = np.full(n, -np.inf)

        # R2 — successive groups at one node must stay strictly ordered
        # lane-wise, else the lane's own heap would have merged or swapped
        # them. (A lane can trip this *later* than its true divergence
        # point; that is why diverged lanes — violations included — are
        # always replayed rather than trusted.)
        lt = last_t[index]
        order_mask = T_ref <= lt
        if order_mask.any():
            diverge(order_mask, "order")
        lt[...] = T_ref

        result.processed += len(ports)
        result.groups += 1

        # -- dispatch: mirror Transitional.raw_firings lane-wise --------
        fast = machine._fast
        st = state[index]
        td = tau_done[index]
        th = theta[index]
        tlabels: List[str] = []
        fire_list: List[tuple] = []
        failed = False
        if len(ports) == 1:
            sequence = iter(ports)
        else:
            sequence = None
            remaining = set(ports)
        while True:
            if sequence is not None:
                symbol = next(sequence, None)
                if symbol is None:
                    break
            else:
                if not remaining:
                    break
                if len(remaining) == 1:
                    symbol = remaining.pop()
                else:
                    candidates = sorted(
                        remaining, key=machine.inputs.index
                    )
                    try:
                        best = min(
                            fast[(st, sym)][4].priority for sym in candidates
                        )
                    except KeyError:
                        failed = True
                        break
                    tied = [
                        sym for sym in candidates
                        if fast[(st, sym)][4].priority == best
                    ]
                    if len(tied) > 1:
                        draws = noise.tie(index, len(tied))
                        lanes = np.nonzero(active)[0]
                        if len(lanes):
                            counts = np.bincount(
                                draws[lanes], minlength=len(tied)
                            )
                            majority = int(np.argmax(counts))
                        else:
                            majority = 0
                        diverge(draws != majority, "tie-break")
                        symbol = tied[majority]
                    else:
                        symbol = tied[0]
                    remaining.discard(symbol)
            entry = fast.get((st, symbol))
            if entry is None:
                failed = True
                break
            dest, transition_time, firing, constraints, _tr, tlabel = entry
            viol = T_ref < td
            for constrained, tau_dist in constraints:
                viol = viol | (T_ref < th[constrained] + tau_dist)
            if viol.any():
                diverge(viol, "violation")
            tlabels.append(tlabel)
            th[symbol][...] = T_ref
            st = dest
            td[...] = T_ref + transition_time
            fire_list.extend(firing)
        state[index] = st
        if failed:
            # Unreachable for validated machines (delta is total); kept so
            # a hypothetical gap degrades to replay-everything, not a crash.
            diverge(np.ones(n, dtype=bool), "error")
            break

        # -- resolve + emit + push --------------------------------------
        node_applies = applies[index]
        if node_applies is None:
            node_applies = applies[index] = spec.applies_to(
                element.name, nodes[index].name
            )
        slots = out_slots[index]
        pushes = 0
        emits: List = []
        for out, delay in fire_list:
            resolved = noise.resolve(delay, index, spec, node_applies)
            t_out = T_ref + resolved
            dest_index, dest_key, dest_port, label = slots[out]
            series_acc[label].append(t_out)
            if collect_stats:
                emits.append(resolved)
            if dest_index >= 0:
                risk = None
                if dest_key < key:
                    risk = _zero_mask(resolved, n)
                heappush(
                    heap,
                    (
                        t_nom + nominal_delay(delay), dest_key, seq,
                        dest_index, dest_port, t_out, risk,
                    ),
                )
                seq += 1
                pushes += 1

        if collect_stats:
            result.stats_groups.append(
                (
                    nodes[index].name, element.name, len(ports),
                    tuple(tlabels), emits,
                )
            )
            result.heap_log.append((key, T_ref, len(entries), pushes))
    return result


# ----------------------------------------------------------------------
# Per-lane finalization
# ----------------------------------------------------------------------
def _finalize_events(result: _DrainResult, n: int) -> Dict[str, list]:
    """Per-label, per-lane sorted time lists, built in one pass per label.

    Each label's pulse entries form a ``(pulses, lanes)`` matrix sorted
    once along the pulse axis; one transpose + ``tolist`` then yields
    every lane's series, instead of a per-lane column copy (the lane loop
    in :func:`_run_one_batch` only indexes into the result).
    """
    per_label: Dict[str, list] = {}
    for label, entries in result.series_acc.items():
        if not entries:
            per_label[label] = None
            continue
        matrix = np.empty((len(entries), n))
        for row, entry in enumerate(entries):
            matrix[row, :] = entry  # broadcasts pure-nominal scalars
        matrix.sort(axis=0)
        per_label[label] = matrix.T.tolist()
    return per_label


def _events_for_lane(per_label: Dict[str, list], lane: int) -> dict:
    return {
        label: (columns[lane] if columns is not None else [])
        for label, columns in per_label.items()
    }


def _lane_heap_depth(result: _DrainResult, lane: int) -> int:
    """Reconstruct the lane's sequential max pending-heap depth.

    The sequential drain samples the heap depth at the top of each group
    iteration. A conformant lane pops the same groups with the same raw
    entry/push counts, only ordered by its own ``(lane time, node key)``;
    re-ordering the batch's per-group deltas by that key and prefix-summing
    recovers the lane's exact depth trajectory.
    """
    log = result.heap_log
    initial = result.input_pushes
    if not log:
        return initial
    count = len(log)
    keys = np.fromiter((g[0] for g in log), dtype=np.int64, count=count)
    times = np.empty(count)
    deltas = np.empty(count, dtype=np.int64)
    for g, (_key, T_ref, raw_pop, pushes) in enumerate(log):
        times[g] = T_ref if isinstance(T_ref, float) else T_ref[lane]
        deltas[g] = pushes - raw_pop
    order = np.lexsort((keys, times))
    trajectory = initial + np.concatenate(
        ([0], np.cumsum(deltas[order])[:-1])
    )
    return int(max(initial, trajectory.max()))


def _stats_for_lane(result: _DrainResult, lane: int):
    """Rebuild the lane's exact ``SimMetrics``, as a metrics-only observer
    riding the sequential drain would have recorded it.

    Integer counters are lane-invariant for conformant lanes; the per-cell
    delay-histogram float totals are summed in the batch's per-node group
    order, which R2 guarantees equals the lane's own per-node order — the
    same association order, hence the same bits.
    """
    from ..obs.metrics import SimMetrics

    metrics = SimMetrics()
    metrics.input_pulses = result.input_pulses
    metrics.groups = result.groups
    metrics.pulses_processed = result.processed
    metrics.max_heap_depth = _lane_heap_depth(result, lane)
    for name, cell_name, n_ports, tlabels, emits in result.stats_groups:
        cell = metrics.cell(name, cell_name)
        cell.groups += 1
        cell.pulses_in += n_ports
        cell.pulses_out += len(emits)
        transitions = cell.transitions
        for tlabel in tlabels:
            transitions[tlabel] = transitions.get(tlabel, 0) + 1
        delays = cell.delays
        for resolved in emits:
            delays.add(
                resolved if isinstance(resolved, float)
                else float(resolved[lane])
            )
    return metrics


# ----------------------------------------------------------------------
# Replay + the public chunk entry point
# ----------------------------------------------------------------------
def _classify_replay(sim, predicate, variability, seed, collect_stats):
    """One seed on the reference drain (the divergence fallback)."""
    sim.reset()
    observer = None
    if collect_stats:
        from ..obs import Observer

        observer = Observer(provenance=False, metrics=True)
    try:
        events = sim.simulate(
            variability=variability, seed=seed, observer=observer
        )
    except SimulationError:
        return VIOLATION, observer.metrics if observer else None
    outcome = OK if predicate(events) else MIS_BEHAVED
    return outcome, observer.metrics if observer else None


def _replay_seeds(sim, predicate, variability, seeds, collect_stats):
    outcomes: List[str] = []
    stats: List = []
    for seed in seeds:
        outcome, metrics = _classify_replay(
            sim, predicate, variability, seed, collect_stats
        )
        outcomes.append(outcome)
        if collect_stats:
            stats.append(metrics)
    return outcomes, stats


def _run_one_batch(
    sim,
    compiled: CompiledCircuit,
    predicate,
    sigma: float,
    seeds: Sequence[int],
    collect_stats: bool,
    report: BatchReport,
    max_pulses: Optional[int],
) -> Tuple[List[str], List]:
    variability = {"stddev": sigma, "scheme": "counter"}
    spec = VariabilitySpec.normalize(variability)
    noise = CounterNoise.for_seeds(seeds)
    result = _drain(compiled, spec, noise, collect_stats, max_pulses)

    per_label = None
    outcomes: List[Optional[str]] = [None] * len(seeds)
    stats: List = [None] * len(seeds) if collect_stats else []
    for lane, seed in enumerate(seeds):
        if result.active[lane]:
            if per_label is None:
                per_label = _finalize_events(result, noise.n)
            events = _events_for_lane(per_label, lane)
            outcomes[lane] = OK if predicate(events) else MIS_BEHAVED
            if collect_stats:
                stats[lane] = _stats_for_lane(result, lane)
            report.batched_lanes += 1
        else:
            report.count(result.cause[lane] or "error")
            report.fallback_seeds.append(seed)
            outcome, metrics = _classify_replay(
                sim, predicate, variability, seed, collect_stats
            )
            outcomes[lane] = outcome
            if collect_stats:
                stats[lane] = metrics
    return outcomes, stats


def run_batch(
    sim,
    predicate: Callable[[dict], bool],
    sigma: float,
    seeds: Sequence[int],
    collect_stats: bool = False,
    batch: Union[int, str, None] = None,
    max_pulses: Optional[int] = 1_000_000,
) -> Tuple[List[str], List, BatchReport]:
    """Classify every seed, batching lanes through the vectorized drain.

    ``sim`` is a (reusable) ``Simulation`` whose circuit the seeds sweep;
    returns ``(outcomes, per_seed_stats, report)`` with outcomes in seed
    order and ``per_seed_stats`` empty unless ``collect_stats``. Seeds in
    excess of the batch width run as further batches. Ineligible designs
    (see :func:`batch_eligible`) fall back wholesale to the sequential
    drain under the original python-rng scheme, so their results match
    every other backend; ``batch=0`` forces the per-seed counter-scheme
    reference (the CI smoke job diffs it against the batched output).
    """
    seeds = list(seeds)
    report = BatchReport()
    if not seeds:
        return [], [], report
    compiled = compile_circuit(sim.circuit)
    if not batch_eligible(compiled):
        report.count("ineligible", len(seeds))
        report.fallback_seeds.extend(seeds)
        outcomes, stats = _replay_seeds(
            sim, predicate, {"stddev": sigma}, seeds, collect_stats
        )
        return outcomes, stats, report
    width = resolve_batch(batch, len(seeds))
    if width == 0:
        outcomes, stats = _replay_seeds(
            sim, predicate, {"stddev": sigma, "scheme": "counter"}, seeds,
            collect_stats,
        )
        return outcomes, stats, report
    outcomes = []
    stats: List = []
    for start in range(0, len(seeds), width):
        chunk = seeds[start:start + width]
        chunk_outcomes, chunk_stats = _run_one_batch(
            sim, compiled, predicate, sigma, chunk, collect_stats, report,
            max_pulses,
        )
        outcomes.extend(chunk_outcomes)
        stats.extend(chunk_stats)
    return outcomes, stats, report
