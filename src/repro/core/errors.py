"""Exception hierarchy for the PyLSE reproduction.

All library errors derive from :class:`PylseError` so user code can catch a
single class, mirroring ``pylse.pylse_exceptions.PylseError`` in the paper
(Figure 13).
"""

from __future__ import annotations


class PylseError(Exception):
    """Base class for every error raised by this library."""


class WellFormednessError(PylseError):
    """A cell definition is not a well-formed transition system.

    Raised at class-definition or instantiation time by the Cell Definition
    level checks of Section 4.2: unrecognized field names, references to
    unknown triggers or outputs, a missing ``idle`` start state, incomplete
    specification of transitions, or a cell that never fires an output.
    """


class FanoutError(PylseError):
    """A wire is used as an input to more than one element.

    In SCE, outputs cannot be shared directly; a splitter cell must be used
    (Section 4.2, Circuit Design level checks).
    """


class WireError(PylseError):
    """A wire is used incorrectly (double-driven, dangling, renamed, ...)."""


class SimulationError(PylseError):
    """Generic runtime failure inside the discrete-event simulator.

    When a simulation runs with an observer attached
    (:mod:`repro.obs`), dispatch failures carry the causal chain of the
    offending pulse group — every ancestor pulse back to the circuit
    inputs — in :attr:`provenance` (and appended to the message), turning
    the paper's Figure 13 "what violated" report into a "why" report.
    """

    #: Rendered causal chain of the pulse group that triggered the error,
    #: or None when no observer was attached.
    provenance = None


class TransitionTimeViolation(SimulationError):
    """An input pulse arrived while the machine was still transitioning.

    This is the Error-kappa-Tran rule of Figure 6: an input arrived at a time
    ``tau_arr < tau_done``, i.e. during the unstable period modeling the cell's
    hold time.
    """


class PriorInputViolation(SimulationError):
    """A past constraint (setup time) was violated.

    This is the Error-kappa-Cons rule of Figure 6: some input was seen more
    recently than the transition's ``past_constraints`` allow.
    """


class HoleError(PylseError):
    """A Functional ("hole") element was defined or invoked incorrectly."""


class UnconnectedInputError(PylseError):
    """An element input port has no wire driving it at simulation time."""
