"""Timing-slack analysis: how close a run came to violating constraints.

The simulator *rejects* runs that violate hold windows or past constraints
(Figures 3 and 13); this module quantifies how much margin a *passing* run
had — the dynamic-timing-analysis view EDA flows build on:

* **hold slack** of a dispatch = ``tau_arr - tau_done`` (how long after the
  cell re-stabilized the pulse arrived);
* **setup slack** = ``min over constraints (tau_arr - (Theta[sigma'] +
  tau_dist))`` (how much later than the earliest legal instant the
  triggering pulse arrived).

A slack of 0 is legal but brittle: any positive delay noise on the
offending path flips it into a violation, so ``worst_slacks`` is the
quantity to compare against expected variability (see
:mod:`repro.core.montecarlo` for the empirical counterpart).

Margins are computed by replaying a recorded simulation trace
(``simulate(record=True)``) through each cell's machine, so they reflect
exactly the dispatch order the simulator used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .errors import PylseError
from .ir import compile_circuit
from .machine import Configuration
from .simulation import Simulation
from .transitional import Transitional


@dataclass(frozen=True)
class MarginRecord:
    """Timing slack of one pulse consumed by one cell."""

    node: str
    cell: str
    time: float
    port: str
    transition_id: int
    hold_slack: float     # math.inf when the cell was long since stable
    setup_slack: float    # math.inf when no constraint applied

    @property
    def worst(self) -> float:
        return min(self.hold_slack, self.setup_slack)

    def __str__(self) -> str:
        def fmt(value: float) -> str:
            return "inf" if math.isinf(value) else f"{value:g}"

        return (
            f"t={self.time:g} {self.node}({self.cell}).{self.port} "
            f"[transition {self.transition_id}]: hold {fmt(self.hold_slack)}, "
            f"setup {fmt(self.setup_slack)}"
        )


def timing_margins(sim: Simulation) -> List[MarginRecord]:
    """Per-pulse slack records for the last recorded run.

    Requires ``sim.simulate(record=True)`` to have been called; holes are
    skipped (they carry no timing constraints).
    """
    if not sim.trace:
        raise PylseError(
            "No trace recorded: run simulate(record=True) before "
            "timing_margins()"
        )
    nodes = compile_circuit(sim.circuit).node_by_name
    configs: Dict[str, Configuration] = {}
    records: List[MarginRecord] = []
    for entry in sim.trace:
        node = nodes[entry.node]
        element = node.element
        if not isinstance(element, Transitional):
            continue
        machine = element.machine
        config = configs.get(entry.node, machine.initial_configuration())
        remaining = set(entry.ports)
        while remaining:
            symbol = machine.choose(config.state, frozenset(remaining))
            remaining.discard(symbol)
            transition = machine.delta(config.state, symbol)
            hold = entry.time - config.tau_done
            if math.isinf(config.tau_done):
                hold = math.inf
            setup = math.inf
            for constrained, tau_dist in machine._constraint_items(transition):
                last = config.theta[constrained]
                if not math.isinf(last):
                    setup = min(setup, entry.time - (last + tau_dist))
            records.append(
                MarginRecord(
                    node=entry.node,
                    cell=element.name,
                    time=entry.time,
                    port=symbol,
                    transition_id=transition.id,
                    hold_slack=hold,
                    setup_slack=setup,
                )
            )
            config, _ = machine.step(config, symbol, entry.time)
        configs[entry.node] = config
    return records


def worst_slacks(records: List[MarginRecord]) -> Dict[str, MarginRecord]:
    """The tightest record per node (min of hold and setup slack)."""
    worst: Dict[str, MarginRecord] = {}
    for record in records:
        current = worst.get(record.node)
        if current is None or record.worst < current.worst:
            worst[record.node] = record
    return worst


def critical_path(records: List[MarginRecord], n: int = 5) -> List[MarginRecord]:
    """The ``n`` globally tightest records, tightest first."""
    finite = [r for r in records if not math.isinf(r.worst)]
    return sorted(finite, key=lambda r: r.worst)[:n]


def slack_report(sim: Simulation, n: int = 10) -> str:
    """Human-readable slack summary of a recorded run."""
    records = timing_margins(sim)
    tightest = critical_path(records, n)
    lines = [
        f"timing slack report: {len(records)} dispatches across "
        f"{len({r.node for r in records})} cells",
    ]
    if not tightest:
        lines.append("  no finite slacks (no timing constraints exercised)")
        return "\n".join(lines)
    lines.append(f"  tightest {len(tightest)}:")
    for record in tightest:
        lines.append(f"    {record}")
    overall = tightest[0]
    lines.append(
        f"  worst slack: {overall.worst:g} ps at {overall.node} "
        f"(any added skew beyond this on that path violates timing)"
    )
    return "\n".join(lines)
