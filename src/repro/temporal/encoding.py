"""Temporal (race-logic) value encoding.

In the temporal conventions the paper's min-max pair follows [52], a value
``v`` is encoded as a pulse at time ``t0 + v * unit``; smaller values race
ahead of larger ones. This module converts between Python numbers and pulse
times, and decodes simulation events back into values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.circuit import working_circuit
from ..core.errors import PylseError
from ..core.helpers import inp_at
from ..core.simulation import Events
from ..core.wire import Wire


@dataclass(frozen=True)
class TemporalCode:
    """A value-to-time mapping: ``time = offset + value * unit``.

    ``offset`` keeps value 0 a real pulse (and clears any setup windows at
    circuit start); ``unit`` is the ps-per-unit resolution and must comfortably
    exceed the cells' hold times for adjacent codes to be distinguishable.
    """

    offset: float = 10.0
    unit: float = 5.0

    def __post_init__(self):
        if self.unit <= 0:
            raise PylseError(f"Temporal unit must be positive, got {self.unit}")
        if self.offset < 0:
            raise PylseError(f"Temporal offset must be >= 0, got {self.offset}")

    def to_time(self, value: float) -> float:
        if value < 0:
            raise PylseError(f"Temporal codes are nonnegative, got {value}")
        return self.offset + value * self.unit

    def from_time(self, time: float, latency: float = 0.0) -> float:
        """Decode a pulse time back to a value, removing circuit ``latency``."""
        return (time - latency - self.offset) / self.unit

    def encode_input(self, value: float, name: Optional[str] = None) -> Wire:
        """An input wire pulsing once at the encoding of ``value``."""
        return inp_at(self.to_time(value), name=name)

    def encode_inputs(
        self, values: Sequence[float], prefix: str = "x"
    ) -> List[Wire]:
        return [
            self.encode_input(v, name=f"{prefix}{k}")
            for k, v in enumerate(values)
        ]

    def decode_events(
        self, events: Events, names: Sequence[str], latency: float = 0.0
    ) -> Dict[str, Optional[float]]:
        """First-pulse decode of each named wire; None if it never pulsed."""
        out: Dict[str, Optional[float]] = {}
        for name in names:
            times = events.get(name, [])
            out[name] = self.from_time(times[0], latency) if times else None
        return out
