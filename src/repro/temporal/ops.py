"""Race-logic operations over temporally-coded wires.

The four primitive operations of race logic, realized with the paper's
cells (the same building blocks as the min-max pair and race tree):

* ``first_arrival`` (MIN) — the Inverted C element;
* ``last_arrival`` (MAX) — the C element;
* ``delay_by`` (ADD-constant) — a JTL;
* ``inhibit`` — the INH cell (a pulse passes only if the inhibitor has not
  arrived).

Plus two composites: n-ary min/max trees (with JTL path balancing so every
input sees the same latency) and a winner-take-all network returning a
one-hot indication of the earliest input.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.base import SFQ
from ..sfq.c_element import C
from ..sfq.functions import _place, c, c_inv, jtl, m, split
from ..sfq.inh import INH
from ..sfq.inv_c import InvC
from ..sfq.jtl import JTL


def first_arrival(a: Wire, b: Wire, name: Optional[str] = None) -> Wire:
    """MIN: pulse at ``min(a, b) + InvC delay``."""
    return c_inv(a, b, name=name)


def last_arrival(a: Wire, b: Wire, name: Optional[str] = None) -> Wire:
    """MAX: pulse at ``max(a, b) + C delay``."""
    return c(a, b, name=name)


def delay_by(a: Wire, amount: float, name: Optional[str] = None) -> Wire:
    """ADD-constant: pulse at ``a + amount`` (a JTL with that firing delay)."""
    return jtl(a, firing_delay=amount, name=name)


def inhibit(inhibitor: Wire, signal: Wire, name: Optional[str] = None) -> Wire:
    """Pulse at ``signal + INH delay`` iff the inhibitor has not arrived."""
    return _place(INH, [inhibitor, signal], name=name)


def _tree(wires: Sequence[Wire], combine, stage_delay: float) -> Wire:
    """Balanced binary reduction with JTL padding for odd carries."""
    level: List[Wire] = list(wires)
    while len(level) > 1:
        nxt: List[Wire] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(combine(level[i], level[i + 1]))
        if len(level) % 2:
            # Odd wire advances a level; pad it to the same latency.
            nxt.append(jtl(level[-1], firing_delay=stage_delay))
        level = nxt
    return level[0]


def min_n(wires: Sequence[Wire], name: Optional[str] = None) -> Wire:
    """N-ary MIN: balanced tree of Inverted C elements."""
    if not wires:
        raise PylseError("min_n needs at least one wire")
    out = _tree(wires, first_arrival, InvC.firing_delay)
    if name:
        out.observe(name)
    return out


def max_n(wires: Sequence[Wire], name: Optional[str] = None) -> Wire:
    """N-ary MAX: balanced tree of C elements."""
    if not wires:
        raise PylseError("max_n needs at least one wire")
    out = _tree(wires, last_arrival, C.firing_delay)
    if name:
        out.observe(name)
    return out


def tree_latency(n: int, cell: type = InvC) -> float:
    """Nominal input-to-output latency of an n-input min/max tree."""
    depth = 0
    while (1 << depth) < n:
        depth += 1
    return depth * cell.firing_delay


def _balanced_merge(wires: Sequence[Wire]) -> Tuple[Wire, float]:
    """Merge pulses from all wires with *identical* latency on every path.

    Returns the merged wire and its per-path latency; odd leftovers at each
    level are padded through a JTL carrying one merger delay.
    """
    from ..sfq.merger import M

    level: List[Wire] = list(wires)
    depth = 0
    while len(level) > 1:
        nxt: List[Wire] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(m(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(jtl(level[-1], firing_delay=M.firing_delay))
        level = nxt
        depth += 1
    return level[0], depth * M.firing_delay


def winner_take_all(
    wires: Sequence[Wire], names: Optional[Sequence[str]] = None
) -> Tuple[Wire, ...]:
    """One-hot earliest-arrival detection.

    Output ``i`` pulses iff input ``i`` arrived strictly before every other
    input. Construction per input ``i``: the other inputs are merged (by a
    latency-balanced merger tree) into a "someone else arrived" inhibitor,
    which gates a copy of input ``i`` through an INH cell; the signal copy
    is JTL-padded by exactly the merger tree's latency, so the race at the
    INH reproduces the race at the circuit inputs.

    Exact ties produce *no* winner: the INH cell's priorities process the
    inhibitor first on simultaneous arrival, so tied inputs block each
    other — the conservative resolution of the race-logic metastability
    window. Requires ``n >= 2``.
    """
    n = len(wires)
    if n < 2:
        raise PylseError("winner_take_all needs at least two inputs")
    if names is not None and len(names) != n:
        raise PylseError(f"expected {n} names, got {len(names)}")

    # Each input is used once as a signal and (n-1) times as an inhibitor.
    # Split to the next power of two so every copy leaves the splitter tree
    # at the same depth (equal latency); surplus leaves dangle harmlessly.
    n_split = 1
    while n_split < n:
        n_split *= 2
    copies: List[Tuple[Wire, ...]] = [split(w, n=n_split) for w in wires]
    outputs: List[Wire] = []
    for i in range(n):
        signal = copies[i][0]
        others = [copies[j][1 + (i if i < j else i - 1)] for j in range(n) if j != i]
        inhibitor, tree_delay = _balanced_merge(others)
        signal = jtl(signal, firing_delay=tree_delay) if tree_delay else signal
        out = inhibit(inhibitor, signal)
        if names is not None:
            out.observe(names[i])
        outputs.append(out)
    return tuple(outputs)
