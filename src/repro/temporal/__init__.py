"""Race-logic / temporal computing on top of the PyLSE cells.

The paper's min-max pair and race tree follow the temporal conventions of
Tzimpragos et al.; this package packages those idioms as a small library:
value<->time encoding (:mod:`repro.temporal.encoding`) and the race-logic
operations MIN / MAX / ADD-constant / INHIBIT plus n-ary trees and
winner-take-all (:mod:`repro.temporal.ops`).
"""

from .encoding import TemporalCode
from .ops import (
    delay_by,
    first_arrival,
    inhibit,
    last_arrival,
    max_n,
    min_n,
    tree_latency,
    winner_take_all,
)

__all__ = [
    "TemporalCode",
    "delay_by",
    "first_arrival",
    "inhibit",
    "last_arrival",
    "max_n",
    "min_n",
    "tree_latency",
    "winner_take_all",
]
