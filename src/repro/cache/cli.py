"""The ``python -m repro cache`` subcommand: manage an on-disk store.

One store directory (the ``--cache-dir`` passed to ``serve``,
``explore``, and ``lint``) holds every namespace; this CLI inspects and
maintains it regardless of which consumer wrote it::

    python -m repro cache stats --cache-dir /var/cache/repro
    python -m repro cache gc    --cache-dir /var/cache/repro --max-bytes 64M
    python -m repro cache clear --cache-dir /var/cache/repro
    python -m repro cache clear --cache-dir /var/cache/repro --namespace lint
"""

from __future__ import annotations

import json
import re
import sys
import time

from ..core.errors import PylseError
from .disk import clear_store, gc_store, store_stats

_SIZE_RE = re.compile(r"^(\d+)\s*([kKmMgG]?)[bB]?$")
_SIZE_FACTOR = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_size(text: str) -> int:
    """``"64M"``/``"512k"``/``"1G"``/plain bytes -> an integer byte count."""
    match = _SIZE_RE.match(text.strip())
    if match is None:
        raise PylseError(
            f"size must look like 1048576, 512K, 64M, or 1G, got {text!r}"
        )
    return int(match.group(1)) * _SIZE_FACTOR[match.group(2).lower()]


def _render_size(n: int) -> str:
    for unit, factor in (("G", 1024 ** 3), ("M", 1024 ** 2), ("K", 1024)):
        if n >= factor:
            return f"{n / factor:.1f} {unit}iB"
    return f"{n} B"


def _render_stats(stats: dict) -> str:
    lines = [f"cache store at {stats['root']} ({stats['format']})"]
    namespaces = stats["namespaces"]
    if not namespaces:
        lines.append("  (empty: no namespaces written yet)")
    now = time.time()
    for name, block in namespaces.items():
        age = (
            f", last access {now - block['newest_access']:.0f} s ago"
            if block["newest_access"] is not None
            else ""
        )
        lines.append(
            f"  {name:<12} {block['entries']:>6} entr"
            f"{'y' if block['entries'] == 1 else 'ies'}, "
            f"{_render_size(block['bytes'])}{age}"
        )
    lines.append(
        f"  total: {stats['entries']} "
        f"entr{'y' if stats['entries'] == 1 else 'ies'}, "
        f"{_render_size(stats['bytes'])}; "
        f"{stats['quarantined']} quarantined file(s)"
    )
    return "\n".join(lines)


def add_cache_parser(sub) -> None:
    """Register the ``cache`` subparser on the main CLI."""
    p = sub.add_parser(
        "cache",
        help="inspect or maintain an on-disk cache store (--cache-dir)",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    s = cache_sub.add_parser("stats", help="per-namespace entry counts "
                                           "and sizes")
    s.add_argument("--cache-dir", required=True, metavar="DIR",
                   help="store directory (as passed to serve/explore/lint)")
    s.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the raw stats document instead of text")

    s = cache_sub.add_parser(
        "gc",
        help="evict least-recently-accessed entries down to a size bound",
    )
    s.add_argument("--cache-dir", required=True, metavar="DIR")
    s.add_argument("--max-bytes", required=True, metavar="SIZE",
                   help="store budget, e.g. 1048576, 512K, 64M, 1G")

    s = cache_sub.add_parser("clear", help="remove every cached entry")
    s.add_argument("--cache-dir", required=True, metavar="DIR")
    s.add_argument("--namespace", default=None, metavar="NS",
                   help="clear only this namespace (default: the whole "
                        "store including quarantined files)")


def cmd_cache(args) -> int:
    try:
        if args.cache_command == "stats":
            stats = store_stats(args.cache_dir)
            if args.as_json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                print(_render_stats(stats))
            return 0
        if args.cache_command == "gc":
            summary = gc_store(args.cache_dir, parse_size(args.max_bytes))
            print(
                f"gc: removed {summary['removed_entries']} entr"
                f"{'y' if summary['removed_entries'] == 1 else 'ies'} "
                f"({_render_size(summary['removed_bytes'])}), kept "
                f"{summary['kept_entries']} "
                f"({_render_size(summary['kept_bytes'])})"
                + (
                    f"; swept {summary['swept_tmp']} stale temp file(s)"
                    if summary["swept_tmp"]
                    else ""
                )
            )
            return 0
        removed = clear_store(args.cache_dir, namespace=args.namespace)
        scope = (
            f"namespace {args.namespace!r}"
            if args.namespace
            else "whole store"
        )
        print(f"cleared {scope}: removed {removed} file(s)")
        return 0
    except PylseError as err:
        print(str(err), file=sys.stderr)
        return 1
