"""``repro.cache``: the caching subsystem every expensive backend shares.

The compiled IR gives every heavy artifact a stable identity — the
structural hash and the key tuples built from it
(:func:`repro.core.ir.result_cache_key`,
:func:`repro.core.ir.lint_cache_key`) — and this package turns that
identity into one layered cache implementation instead of three ad-hoc
ones:

* :mod:`repro.cache.lru` — the thread-safe in-memory LRU with observable
  counters (previously ``repro.serve.cache``, which now re-exports it);
* :mod:`repro.cache.disk` — a content-addressed, versioned on-disk store
  with atomic multi-process-safe writes, quarantine of corrupt entries,
  and a size-bounded access-time ``gc()``;
* :mod:`repro.cache.tiered` — :class:`TieredCache`, composing the memory
  front with an optional disk back and owning the double-checked-lock
  request-coalescing logic the yield service pioneered.

Consumers: :mod:`repro.serve` (``--cache-dir`` persists served results
across restarts), :mod:`repro.explore` (a re-run sweep in a fresh process
recomputes nothing), and :mod:`repro.lint` (warm PL4xx re-lint across
processes). ``python -m repro cache stats|gc|clear`` manages a store
written by any of them. See docs/caching.md for the key contracts and the
persistence model.
"""

from .disk import (
    LINT_NAMESPACE,
    RESULTS_NAMESPACE,
    STORE_FORMAT,
    DiskCache,
    canonical_key,
    clear_store,
    gc_store,
    key_digest,
    store_stats,
)
from .lru import LRUCache, MISSING, hit_rate
from .tiered import TieredCache

__all__ = [
    "DiskCache",
    "LINT_NAMESPACE",
    "LRUCache",
    "MISSING",
    "RESULTS_NAMESPACE",
    "STORE_FORMAT",
    "TieredCache",
    "canonical_key",
    "clear_store",
    "gc_store",
    "hit_rate",
    "key_digest",
    "store_stats",
]
