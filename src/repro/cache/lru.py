"""A small thread-safe LRU cache with observable counters.

This is the in-memory front tier of the caching subsystem
(:mod:`repro.cache`): the yield service, the design-space explorer, and
the reachability lint all put one (or two) instances in front of their
expensive computations. Instances are independent objects with
independent capacities and eviction clocks — evicting from one never
drops entries of another (locked by ``tests/test_serve_cache.py``).

The counters (``hits``/``misses``/``evictions``) are raw cache-level
telemetry: a coalesced request that probed the cache, missed, and then
waited on another request's computation still counts one miss here, while
the endpoint-level metrics (:mod:`repro.obs.serving`) count it as a
logical hit. ``/stats`` reports both views.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterator, Optional

from ..core.errors import PylseError

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISSING = object()


class LRUCache:
    """Least-recently-used mapping with a hard capacity bound.

    ``get`` refreshes recency; ``put`` inserts or updates and evicts the
    least recently used entry once ``capacity`` is exceeded. A capacity of
    zero disables the cache (every ``get`` misses, every ``put`` is
    dropped) without callers needing a special case.
    """

    def __init__(self, capacity: int):
        if isinstance(capacity, bool) or not isinstance(capacity, int) \
                or capacity < 0:
            raise PylseError(
                f"cache capacity must be a non-negative integer, "
                f"got {capacity!r}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable) -> object:
        """The cached value, or :data:`MISSING`; refreshes recency on hit."""
        with self._lock:
            value = self._entries.get(key, MISSING)
            if value is MISSING:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return value

    def peek(self, key: Hashable) -> object:
        """Like :meth:`get` but touches neither recency nor the counters."""
        with self._lock:
            return self._entries.get(key, MISSING)

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if self.capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept: they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> Iterator[Hashable]:
        """A snapshot of the keys, least recently used first."""
        with self._lock:
            return iter(list(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.peek(key) is not MISSING

    def stats(self) -> Dict[str, int]:
        """Size/capacity plus the lifetime hit/miss/eviction counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache({s['size']}/{s['capacity']}, hits={s['hits']}, "
            f"misses={s['misses']}, evictions={s['evictions']})"
        )


def hit_rate(stats: Dict[str, int]) -> Optional[float]:
    """Lifetime hit fraction from a :meth:`LRUCache.stats` dict (or None)."""
    total = stats["hits"] + stats["misses"]
    return stats["hits"] / total if total else None
