"""Memory-LRU front + optional disk back, with request coalescing.

:class:`TieredCache` is the one implementation of the pattern the yield
service, the design-space explorer, and the reachability lint each used
to hand-roll:

1. probe the in-memory :class:`~repro.cache.lru.LRUCache` (nanoseconds);
2. on miss, probe the optional :class:`~repro.cache.disk.DiskCache` —
   a hit is decoded, *promoted* into memory, and served;
3. on a full miss, take the compute lock, **re-check** (another thread
   may have computed while we queued — the double-checked-lock
   coalescing extracted from ``repro.serve.service``), compute once, and
   write through to both tiers.

Values can be arbitrary Python objects in memory; the disk tier stores
canonical JSON, so a cache with a disk back takes an ``encode``/
``decode`` codec pair (defaulting to identity for values that already
are JSON-able). A disk payload that fails to decode is quarantined and
treated as a miss — the same never-crash contract the disk tier itself
keeps for corrupt files.

Counter semantics mirror the service's originals: a request probes each
tier at most once (the locked re-check uses non-counting ``peek``), so
cache-level counters stay one-probe-per-request and waiting on another
request's computation shows up only in ``coalesced``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from .disk import DiskCache
from .lru import LRUCache, MISSING


class TieredCache:
    """See the module docstring; one instance fronts one computation."""

    def __init__(
        self,
        memory: LRUCache,
        disk: Optional[DiskCache] = None,
        encode: Optional[Callable[[object], object]] = None,
        decode: Optional[Callable[[object], object]] = None,
        lock=None,
    ):
        self.memory = memory
        self.disk = disk
        self._encode = encode
        self._decode = decode
        #: The compute lane. Callers whose computation needs a wider
        #: critical section (the service serializes elaboration under the
        #: same lock) pass their own — re-entrant locks work.
        self._lock = lock if lock is not None else threading.Lock()
        #: Requests that missed, queued on the lock, and were then served
        #: a result computed (or disk-written) while they waited.
        self.coalesced = 0

    # -- tier plumbing -------------------------------------------------
    def _from_disk(self, key, *, count: bool) -> object:
        if self.disk is None:
            return MISSING
        raw = self.disk.get(key) if count else self.disk.peek(key)
        if raw is MISSING:
            return MISSING
        if self._decode is None:
            return raw
        try:
            return self._decode(raw)
        except Exception:
            # A validly-stored document our codec rejects (e.g. written
            # by a newer payload shape): quarantine like any corruption.
            self.disk.invalidate(key)
            return MISSING

    # -- mapping interface ---------------------------------------------
    def get(self, key) -> object:
        """Probe memory then disk; promotes a disk hit into memory."""
        value = self.memory.get(key)
        if value is not MISSING:
            return value
        value = self._from_disk(key, count=True)
        if value is not MISSING:
            self.memory.put(key, value)
        return value

    def put(self, key, value) -> None:
        """Write through: memory always, disk when attached."""
        self.memory.put(key, value)
        if self.disk is not None:
            encoded = value if self._encode is None else self._encode(value)
            self.disk.put(key, encoded)

    def get_or_compute(
        self, key, compute: Callable[[], object]
    ) -> Tuple[object, bool]:
        """Serve ``key`` from either tier, computing (once) on a miss.

        Returns ``(value, served_from_cache)``. Concurrent misses on the
        same key coalesce: followers queue on the compute lock, find the
        leader's result on the re-check, and never run ``compute`` —
        exactly one computation per distinct key (absent eviction churn).
        """
        value = self.get(key)
        if value is not MISSING:
            return value, True
        with self._lock:
            # peek, not get: this request already took its one miss
            # above; a coalesced wait must not distort the per-tier
            # counters (see the module docstring).
            value = self.memory.peek(key)
            if value is MISSING:
                value = self._from_disk(key, count=False)
                if value is not MISSING:
                    self.memory.put(key, value)
            if value is not MISSING:
                self.coalesced += 1
                return value, True
            value = compute()
            self.put(key, value)
            return value, False

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; optionally the disk tier too."""
        self.memory.clear()
        if disk and self.disk is not None:
            self.disk.clear()

    def stats(self) -> Dict[str, object]:
        """Per-tier counters plus the coalescing total."""
        return {
            "memory": self.memory.stats(),
            "disk": None if self.disk is None else self.disk.stats(),
            "coalesced": self.coalesced,
        }
