"""A content-addressed, versioned on-disk cache store.

One :class:`DiskCache` is the persistent back tier of a
:class:`~repro.cache.tiered.TieredCache`: entries survive process
restarts and are shared by every process pointed at the same directory
(multiple servers behind a balancer, CI re-runs, a sweep warming the
cache a later serve reads).

**Addressing.** An entry is keyed by the same tuples the in-memory caches
use (:func:`repro.core.ir.result_cache_key`,
:func:`repro.core.ir.lint_cache_key`). The key is rendered to canonical
JSON and SHA-256 hashed into the file name
(``<root>/<namespace>/<hh>/<digest>.json``); the full key is stored
inside the entry and verified on every read, so a digest collision or a
foreign file can never be served as a hit. The key tuples already embed
the IR hash-recipe version, so a format bump self-invalidates every
stale entry — it simply stops being addressed.

**Writes** are atomic under concurrent multi-process writers: the
document is written to a temporary file in the entry's directory and
``os.replace``\\ d into place. Two processes racing on one key both
install a complete, valid document (and, by the determinism contract
that makes the keys sound, the *same* document — last writer wins
harmlessly). A write that fails (read-only disk, ENOSPC) is counted and
swallowed: a cache must never break the computation it memoizes.

**Reads** treat anything unexpected — truncated JSON, a garbage file, a
wrong format tag, a key mismatch — as a miss and *quarantine* the file
under ``<root>/quarantine/`` so it is never parsed again and remains
available for debugging. A hit bumps the entry's mtime, which is the
access clock :meth:`DiskCache.gc` evicts by.

**gc** bounds the store: entries are removed least-recently-accessed
first until the namespace fits ``max_bytes``; stale temp files from
crashed writers are swept too. ``python -m repro cache stats|gc|clear``
runs the same logic across every namespace of a store
(:func:`store_stats`, :func:`gc_store`, :func:`clear_store`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import PylseError
from .lru import MISSING

#: Format tag of every stored document; a mismatch quarantines the file.
STORE_FORMAT = "repro-cache-v1"

#: Namespace for Monte-Carlo yield measurements (shared by serve and
#: explore: both key by ``result_cache_key`` and store the canonical
#: ``yield_result_to_jsonable`` document, so a sweep warms the service).
RESULTS_NAMESPACE = "results"

#: Namespace for finished PL4xx reachability analyses.
LINT_NAMESPACE = "lint"

#: Directory (under the store root) corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: With ``max_bytes`` set, an opportunistic :meth:`DiskCache.gc` runs
#: every this many writes so a long-lived server stays bounded without
#: paying a directory walk per ``put``.
GC_EVERY_WRITES = 64

#: Temp files older than this are presumed orphaned by a crashed writer
#: and swept by ``gc`` (a live writer holds its temp file for
#: milliseconds).
STALE_TMP_SECONDS = 3600.0

_TMP_PREFIX = ".tmp-"


def canonical_key(key: object) -> object:
    """The key as the JSON-able value stored (and verified) on disk.

    Tuples become lists (JSON has no tuples); everything else must
    already be JSON-representable — the cache-key tuples are built from
    strings, numbers, and ``None`` only.
    """
    if isinstance(key, (tuple, list)):
        return [canonical_key(item) for item in key]
    return key


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def key_digest(key: object) -> str:
    """SHA-256 of the canonical JSON rendering of ``key``."""
    try:
        text = _canonical_json(canonical_key(key))
    except (TypeError, ValueError) as err:
        raise PylseError(
            f"cache key is not JSON-representable: {err}"
        ) from None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskCache:
    """See the module docstring; one instance serves one namespace."""

    def __init__(
        self,
        root,
        namespace: str = RESULTS_NAMESPACE,
        max_bytes: Optional[int] = None,
    ):
        if not namespace or not namespace.replace("_", "").isalnum():
            raise PylseError(
                f"cache namespace must be a non-empty alphanumeric "
                f"identifier, got {namespace!r}"
            )
        if max_bytes is not None and (
            isinstance(max_bytes, bool)
            or not isinstance(max_bytes, int)
            or max_bytes < 0
        ):
            raise PylseError(
                f"max_bytes must be a non-negative integer or None, "
                f"got {max_bytes!r}"
            )
        self.root = pathlib.Path(root)
        self.namespace = namespace
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_errors = 0
        self.quarantined = 0
        try:
            (self.root / namespace).mkdir(parents=True, exist_ok=True)
        except OSError as err:
            raise PylseError(
                f"cannot create cache directory {self.root / namespace}: "
                f"{err}"
            ) from None

    # -- paths ---------------------------------------------------------
    def _dir(self) -> pathlib.Path:
        return self.root / self.namespace

    def path_for(self, key: object) -> pathlib.Path:
        """The entry file this key addresses (whether or not it exists)."""
        digest = key_digest(key)
        return self._dir() / digest[:2] / f"{digest}.json"

    # -- reads ---------------------------------------------------------
    def get(self, key: object) -> object:
        """The stored value, or :data:`MISSING`; bumps the access clock."""
        value = self._load(key)
        if value is MISSING:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def peek(self, key: object) -> object:
        """Like :meth:`get` without touching the hit/miss counters.

        (Corrupt entries are still quarantined and the access clock still
        bumps — those reflect what actually happened on disk.)
        """
        return self._load(key)

    def _load(self, key: object) -> object:
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return MISSING
        try:
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                raise ValueError("document is not an object")
            if doc.get("format") != STORE_FORMAT:
                raise ValueError(f"format {doc.get('format')!r}")
            if doc.get("key") != canonical_key(key):
                raise ValueError("stored key does not match its address")
            value = doc["value"]
        except (ValueError, KeyError, TypeError):
            # Truncated, garbage, foreign, or colliding: a miss, never a
            # crash, never partial data — and never parsed again.
            self._quarantine(path)
            return MISSING
        try:
            os.utime(path)  # access clock for gc's LRU eviction
        except OSError:
            pass
        return value

    # -- writes --------------------------------------------------------
    def put(self, key: object, value: object) -> None:
        """Atomically install ``value`` (a JSON-able object) for ``key``."""
        doc = {
            "format": STORE_FORMAT,
            "namespace": self.namespace,
            "key": canonical_key(key),
            "value": value,
        }
        try:
            data = _canonical_json(doc).encode("utf-8")
        except (TypeError, ValueError) as err:
            raise PylseError(
                f"cache value for namespace {self.namespace!r} is not "
                f"JSON-representable: {err}"
            ) from None
        path = self.path_for(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=_TMP_PREFIX, suffix=".json", dir=path.parent
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)  # atomic: readers see old, new, or none
            tmp = None
            self.writes += 1
        except OSError:
            self.write_errors += 1
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        if (
            self.max_bytes is not None
            and self.writes
            and self.writes % GC_EVERY_WRITES == 0
        ):
            self.gc()

    def invalidate(self, key: object) -> None:
        """Quarantine ``key``'s entry (e.g. its payload failed to decode)."""
        path = self.path_for(key)
        if path.exists():
            self._quarantine(path)

    def _quarantine(self, path: pathlib.Path) -> None:
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / f"{self.namespace}-{path.name}.{os.getpid()}"
            os.replace(path, target)
            self.quarantined += 1
        except OSError:
            # Racing quarantiners or a read-only store: removing the bad
            # entry is enough; failing that, it stays a repeated miss.
            try:
                os.unlink(path)
                self.quarantined += 1
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------
    def entries(self) -> Iterator[Tuple[pathlib.Path, os.stat_result]]:
        """Every valid-looking entry file with its stat, unordered."""
        yield from _iter_entries(self._dir())

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Evict least-recently-accessed entries down to the size bound.

        ``max_bytes`` defaults to the instance bound; ``None`` for both
        only sweeps stale temp files. Returns a summary dict.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        return _gc_dir(self._dir(), bound)

    def clear(self) -> int:
        """Remove every entry (counters kept); returns the removed count."""
        removed = 0
        for path, _stat in list(self.entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Entry count/bytes plus the lifetime counters (walks the dir)."""
        entry_count = 0
        total = 0
        for _path, stat in self.entries():
            entry_count += 1
            total += stat.st_size
        return {
            "namespace": self.namespace,
            "entries": entry_count,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:
        return (
            f"DiskCache({str(self._dir())!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )


# ----------------------------------------------------------------------
# Store-level helpers (the `python -m repro cache` CLI's engine)
# ----------------------------------------------------------------------
def _iter_entries(scope: pathlib.Path):
    if not scope.is_dir():
        return
    for path in scope.rglob("*.json"):
        if path.name.startswith(_TMP_PREFIX):
            continue
        try:
            yield path, path.stat()
        except OSError:
            continue


def _sweep_stale_tmp(scope: pathlib.Path, now: float) -> int:
    swept = 0
    if not scope.is_dir():
        return swept
    for path in scope.rglob(f"{_TMP_PREFIX}*"):
        try:
            if now - path.stat().st_mtime > STALE_TMP_SECONDS:
                os.unlink(path)
                swept += 1
        except OSError:
            continue
    return swept


def _gc_dir(scope: pathlib.Path, max_bytes: Optional[int]) -> Dict[str, int]:
    now = time.time()
    swept_tmp = _sweep_stale_tmp(scope, now)
    records: List[Tuple[float, int, pathlib.Path]] = [
        (stat.st_mtime, stat.st_size, path)
        for path, stat in _iter_entries(scope)
    ]
    total = sum(size for _mtime, size, _path in records)
    removed = 0
    removed_bytes = 0
    if max_bytes is not None and total > max_bytes:
        for _mtime, size, path in sorted(records):  # oldest access first
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            removed_bytes += size
            total -= size
            if total <= max_bytes:
                break
    return {
        "kept_entries": len(records) - removed,
        "kept_bytes": total,
        "removed_entries": removed,
        "removed_bytes": removed_bytes,
        "swept_tmp": swept_tmp,
    }


def _namespaces(root: pathlib.Path) -> List[str]:
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and entry.name != QUARANTINE_DIR
    )


def store_stats(root) -> Dict[str, object]:
    """Per-namespace entry counts/bytes/ages for a whole store directory."""
    root = pathlib.Path(root)
    namespaces: Dict[str, object] = {}
    total_entries = 0
    total_bytes = 0
    for name in _namespaces(root):
        entries = 0
        size = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for _path, stat in _iter_entries(root / name):
            entries += 1
            size += stat.st_size
            mtime = stat.st_mtime
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        namespaces[name] = {
            "entries": entries,
            "bytes": size,
            "oldest_access": oldest,
            "newest_access": newest,
        }
        total_entries += entries
        total_bytes += size
    # Quarantined files carry a ``.<pid>`` suffix, so count raw files
    # rather than reusing the ``*.json`` entry walk.
    qdir = root / QUARANTINE_DIR
    quarantine = (
        sum(1 for path in qdir.rglob("*") if path.is_file())
        if qdir.is_dir()
        else 0
    )
    return {
        "format": STORE_FORMAT,
        "root": str(root),
        "namespaces": namespaces,
        "entries": total_entries,
        "bytes": total_bytes,
        "quarantined": quarantine,
    }


def gc_store(root, max_bytes: Optional[int]) -> Dict[str, object]:
    """Bound a whole store: global least-recently-accessed eviction.

    The bound applies across namespaces (one budget for the store, the
    way an operator thinks about a disk), so a hot namespace can displace
    a cold one.
    """
    root = pathlib.Path(root)
    now = time.time()
    swept_tmp = 0
    records: List[Tuple[float, int, pathlib.Path]] = []
    for name in _namespaces(root):
        scope = root / name
        swept_tmp += _sweep_stale_tmp(scope, now)
        records.extend(
            (stat.st_mtime, stat.st_size, path)
            for path, stat in _iter_entries(scope)
        )
    total = sum(size for _mtime, size, _path in records)
    removed = 0
    removed_bytes = 0
    if max_bytes is not None and total > max_bytes:
        for _mtime, size, path in sorted(records):
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            removed_bytes += size
            total -= size
            if total <= max_bytes:
                break
    return {
        "kept_entries": len(records) - removed,
        "kept_bytes": total,
        "removed_entries": removed,
        "removed_bytes": removed_bytes,
        "swept_tmp": swept_tmp,
    }


def clear_store(root, namespace: Optional[str] = None) -> int:
    """Remove every entry (of one namespace, or all); returns the count.

    Quarantined files are cleared too when clearing the whole store —
    ``clear`` means "give me my disk back", debugging artifacts included.
    """
    root = pathlib.Path(root)
    removed = 0
    scopes = (
        [root / namespace]
        if namespace is not None
        else [root / name for name in _namespaces(root)]
        + [root / QUARANTINE_DIR]
    )
    for scope in scopes:
        if not scope.is_dir():
            continue
        for path in list(scope.rglob("*")):
            if path.is_file():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
    return removed
