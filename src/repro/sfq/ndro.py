"""NDRO: non-destructive readout cell (library extension).

Like the DRO, but reading does not destroy the stored flux: every clock
pulse while set produces an output until an explicit reset arrives. A
standard RSFQ cell; not part of the paper's 16-cell table, included as a
library extension (the paper's library "provides templates for the creation
of custom ones").
"""

from __future__ import annotations

from .base import SFQ


class NDRO(SFQ):
    """Non-destructive readout: ``set`` stores, every ``clk`` reads, ``rst`` clears."""

    _setup_time = 1.2
    _hold_time = 2.5

    name = "NDRO"
    inputs = ["set", "rst", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "set", "dst": "stored", "priority": 1},
        {"src": "idle", "trigger": "rst", "dst": "idle", "priority": 1},
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "stored", "trigger": "set", "dst": "stored", "priority": 1},
        {"src": "stored", "trigger": "rst", "dst": "idle", "priority": 1},
        {"src": "stored", "trigger": "clk", "dst": "stored", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
    ]
    jjs = 10
    firing_delay = 6.1
