"""S: splitter.

Forwards an incoming pulse to two outgoing wires. Because SCE outputs
cannot fan out (Section 4.2), every reuse of a wire requires a splitter;
:func:`repro.sfq.functions.split` builds binary trees of these.

Table 3 shape: size 1, states 1, transitions 1. The firing delay of 11 ps
comes from Figure 11's path-balancing arithmetic.
"""

from __future__ import annotations

from .base import SFQ


class S(SFQ):
    """One-input, two-output pulse splitter."""

    name = "S"
    inputs = ["a"]
    outputs = ["l", "r"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "idle", "firing": ["l", "r"]},
    ]
    jjs = 3
    firing_delay = 11.0
