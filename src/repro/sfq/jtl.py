"""JTL: Josephson transmission line.

A basic cell used for connecting other cells over larger distances, adding
delay to a design (footnote 4 of the paper). Figure 11 uses a JTL with an
overridden ``firing_delay=2.0`` for path balancing.

Table 3 shape: size 1, states 1, transitions 1.
"""

from __future__ import annotations

from .base import SFQ


class JTL(SFQ):
    """Pass-through delay element: every input pulse is reproduced on ``q``."""

    name = "JTL"
    inputs = ["a"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
    ]
    jjs = 2
    firing_delay = 5.0
