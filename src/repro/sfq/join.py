"""JOIN: the 2x2 Join element (dual-rail logic primitive, Section 5.2).

Takes two pairs of logically complementary inputs — ``a_t``/``a_f`` and
``b_t``/``b_f`` — and produces one of four outputs depending on which pair
arrived: ``tt``, ``tf``, ``ft``, or ``ff``. Correct use requires
interleaving a B pulse between subsequent A pulses and vice versa (the
Section 5.2 dynamic check); pulses that would violate dual-rail discipline
are absorbed.

Section 5.2 notes 12 transitions carry the cell's logic; the fully specified
machine (every state x every input, as Definition 3.1 requires) has 20,
matching Table 3: size 20, states 5, transitions 20, channels 8.
"""

from __future__ import annotations

from .base import SFQ


class JOIN(SFQ):
    """2x2 join: pair one rail of A with one rail of B."""

    name = "JOIN"
    inputs = ["a_t", "a_f", "b_t", "b_f"]
    outputs = ["tt", "tf", "ft", "ff"]
    transitions = [
        {"src": "idle", "trigger": "a_t", "dst": "at_arr"},
        {"src": "idle", "trigger": "a_f", "dst": "af_arr"},
        {"src": "idle", "trigger": "b_t", "dst": "bt_arr"},
        {"src": "idle", "trigger": "b_f", "dst": "bf_arr"},
        {"src": "at_arr", "trigger": "b_t", "dst": "idle", "firing": "tt"},
        {"src": "at_arr", "trigger": "b_f", "dst": "idle", "firing": "tf"},
        {"src": "at_arr", "trigger": "a_t", "dst": "at_arr"},
        {"src": "at_arr", "trigger": "a_f", "dst": "at_arr"},
        {"src": "af_arr", "trigger": "b_t", "dst": "idle", "firing": "ft"},
        {"src": "af_arr", "trigger": "b_f", "dst": "idle", "firing": "ff"},
        {"src": "af_arr", "trigger": "a_t", "dst": "af_arr"},
        {"src": "af_arr", "trigger": "a_f", "dst": "af_arr"},
        {"src": "bt_arr", "trigger": "a_t", "dst": "idle", "firing": "tt"},
        {"src": "bt_arr", "trigger": "a_f", "dst": "idle", "firing": "ft"},
        {"src": "bt_arr", "trigger": "b_t", "dst": "bt_arr"},
        {"src": "bt_arr", "trigger": "b_f", "dst": "bt_arr"},
        {"src": "bf_arr", "trigger": "a_t", "dst": "idle", "firing": "tf"},
        {"src": "bf_arr", "trigger": "a_f", "dst": "idle", "firing": "ff"},
        {"src": "bf_arr", "trigger": "b_t", "dst": "bf_arr"},
        {"src": "bf_arr", "trigger": "b_f", "dst": "bf_arr"},
    ]
    jjs = 16
    firing_delay = 6.0
