"""INH: race-logic inhibit cell (library extension).

The inhibit gate of race logic [Tzimpragos et al., ASPLOS '19]: a pulse on
``b`` propagates to ``q`` only if the inhibitor ``a`` has not arrived yet;
once ``a`` arrives, subsequent ``b`` pulses are absorbed. Single-shot per
computation (reset by re-instantiating or an external reset scheme), like
the race-tree decision cells.
"""

from __future__ import annotations

from .base import SFQ


class INH(SFQ):
    """Inhibit: ``q`` = ``b`` gated by "``a`` has not arrived"."""

    name = "INH"
    inputs = ["a", "b"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "blocked", "priority": 0},
        {"src": "idle", "trigger": "b", "dst": "idle", "firing": "q",
         "priority": 1},
        {"src": "blocked", "trigger": "a", "dst": "blocked"},
        {"src": "blocked", "trigger": "b", "dst": "blocked"},
    ]
    jjs = 6
    firing_delay = 5.0
