"""DRO_C: destructive readout with complementary outputs.

A clock pulse emits on ``q`` if a data pulse was stored, on ``qnot``
otherwise — the dual-rail readout primitive.

Table 3 shape: size 4, states 2, transitions 4, channels 4 (two inputs plus
two outputs).
"""

from __future__ import annotations

from .base import SFQ


class DRO_C(SFQ):
    """Destructive readout with true/complement outputs."""

    _setup_time = 1.2
    _hold_time = 2.5

    name = "DRO_C"
    inputs = ["a", "clk"]
    outputs = ["q", "qnot"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "qnot",
         "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
    ]
    jjs = 9
    firing_delay = 5.4
