"""DRO: destructive readout cell (the SFQ D flip-flop).

Stores an incoming data pulse; a clock pulse reads it out (producing ``q``)
and destroys the stored state. The related-work discussion (Section 6)
contrasts this 4-line cell with the 90-line Verilog model of the same cell.

Table 3 shape: size 4, states 2, transitions 4.
"""

from __future__ import annotations

from .base import SFQ


class DRO(SFQ):
    """Destructive readout: store ``a``, emit on ``clk``."""

    _setup_time = 1.2
    _hold_time = 2.5

    name = "DRO"
    inputs = ["a", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
    ]
    jjs = 6
    firing_delay = 5.1
