"""InvC: the Inverted C Element.

Fires its output when the *first* of its inputs arrives and silently absorbs
the second (the "min" of a min-max pair, Figure 11: its output appears some
delay after the first input). After the second input arrives, the cell is
back in ``idle``, ready for another round.

Table 3 shape: size 6, states 3, transitions 6. The 14 ps firing delay is
from Figure 11. The UPPAAL name prefix ``C_INV`` matches the Query 2 formula
in Section 5.3.
"""

from __future__ import annotations

from .base import SFQ


class InvC(SFQ):
    """Inverted C element: fire ``q`` when the first of ``a``/``b`` arrives."""

    name = "C_INV"
    inputs = ["a", "b"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "a_arr", "firing": "q"},
        {"src": "idle", "trigger": "b", "dst": "b_arr", "firing": "q"},
        {"src": "a_arr", "trigger": "b", "dst": "idle"},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr"},
        {"src": "b_arr", "trigger": "a", "dst": "idle"},
        {"src": "b_arr", "trigger": "b", "dst": "b_arr"},
    ]
    jjs = 6
    firing_delay = 14.0
