"""INV: the Synchronous Inverter.

Fires ``q`` on a clock pulse only if *no* pulse arrived on ``a`` during the
preceding clock period (in RSFQ encoding, absence of a pulse is logical 0,
so the inverter emits on absence). Timing values are representative.

Table 3 shape: size 4, states 2, transitions 4.
"""

from __future__ import annotations

from .base import SFQ


class INV(SFQ):
    """Synchronous Inverter (RSFQ encoding)."""

    _setup_time = 2.5
    _hold_time = 3.0

    name = "INV"
    inputs = ["a", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
    ]
    jjs = 10
    firing_delay = 9.6
