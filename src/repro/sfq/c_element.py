"""C: the C Element (coincidence junction).

Fires its output once *both* inputs have arrived (an asynchronous AND on
pulse arrival, used as the "max" of a min-max pair in Figure 11: its output
appears some delay after the *later* input). A repeated pulse on an input
that already arrived is absorbed.

Table 3 shape: size 6, states 3, transitions 6. The 12 ps firing delay is
from Figure 11.
"""

from __future__ import annotations

from .base import SFQ


class C(SFQ):
    """C element: fire ``q`` when the second of ``a``/``b`` arrives."""

    name = "C"
    inputs = ["a", "b"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "a_arr"},
        {"src": "idle", "trigger": "b", "dst": "b_arr"},
        {"src": "a_arr", "trigger": "b", "dst": "idle", "firing": "q"},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr"},
        {"src": "b_arr", "trigger": "a", "dst": "idle", "firing": "q"},
        {"src": "b_arr", "trigger": "b", "dst": "b_arr"},
    ]
    jjs = 5
    firing_delay = 12.0
