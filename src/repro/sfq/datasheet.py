"""Cell datasheets: render a PyLSE Machine as text and Graphviz dot.

The paper presents cells as state diagrams (Figure 5); these helpers
regenerate that view from the code — an ASCII transition table for quick
inspection and a ``.dot`` graph for rendering with Graphviz.
"""

from __future__ import annotations

from typing import List, Type

from ..core.machine import PylseMachine
from ..core.timing import nominal_delay
from .base import SFQ


def _edge_label(t) -> str:
    """The Figure 4 edge notation: trigger/priority/tt, firing, constraints."""
    parts = [f"{t.trigger}"]
    parts.append(f"p{t.priority}")
    if t.transition_time:
        parts.append(f"tt={t.transition_time:g}")
    label = ",".join(parts)
    fires = (
        "{" + ",".join(
            f"{out}@{nominal_delay(d):g}" for out, d in t.firing.items()
        ) + "}"
        if t.firing else "{}"
    )
    constraints = (
        "{" + ",".join(f"{s}>={v:g}" for s, v in t.past_constraints.items()) + "}"
        if t.past_constraints else "{}"
    )
    return f"{label} / {fires} / {constraints}"


def machine_to_dot(machine: PylseMachine) -> str:
    """Graphviz dot text for a machine's state diagram."""
    lines = [
        f'digraph "{machine.name}" {{',
        "  rankdir=LR;",
        '  node [shape=circle];',
        f'  __start [shape=point, label=""];',
        f'  __start -> "{machine.initial}";',
    ]
    for t in machine.transitions:
        label = _edge_label(t).replace('"', r"\"")
        lines.append(f'  "{t.source}" -> "{t.dest}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def transition_table(machine: PylseMachine) -> str:
    """The machine as a fixed-width transition table."""
    rows: List[List[str]] = [
        ["id", "src", "trigger", "dst", "prio", "tt", "firing", "constraints"]
    ]
    for t in machine.transitions:
        rows.append([
            str(t.id),
            t.source,
            t.trigger,
            t.dest,
            str(t.priority),
            f"{t.transition_time:g}",
            ",".join(f"{o}@{nominal_delay(d):g}" for o, d in t.firing.items()) or "-",
            ",".join(f"{s}>={v:g}" for s, v in t.past_constraints.items()) or "-",
        ])
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for k, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def datasheet(cell_cls: Type[SFQ]) -> str:
    """A full text datasheet for a cell class."""
    machine = cell_cls()._class_machine()
    header = [
        f"Cell: {cell_cls.name}",
        f"  inputs:  {', '.join(machine.inputs)}",
        f"  outputs: {', '.join(machine.outputs)}",
        f"  states:  {', '.join(machine.states)} (initial: {machine.initial})",
        f"  JJs: {cell_cls.jjs}    nominal firing delay: {cell_cls.firing_delay}",
        f"  DSL size: {cell_cls.dsl_size()} transitions "
        f"({len(machine.transitions)} expanded)",
        "",
    ]
    doc = (cell_cls.__doc__ or "").strip()
    if doc:
        header.insert(1, f"  {doc}")
    return "\n".join(header) + transition_table(machine) + "\n"
