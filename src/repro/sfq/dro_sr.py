"""DRO_SR: destructive readout with set/reset.

Like :mod:`repro.sfq.dro` but with an explicit reset input that clears the
stored flux without producing an output.

Table 3 shape: size 6, states 2, transitions 6, channels 4 (three inputs
plus one output).
"""

from __future__ import annotations

from .base import SFQ


class DRO_SR(SFQ):
    """Set/reset destructive readout."""

    _setup_time = 1.2
    _hold_time = 2.5

    name = "DRO_SR"
    inputs = ["a", "rst", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "idle", "trigger": "rst", "dst": "idle", "priority": 1},
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "a_arr", "trigger": "rst", "dst": "idle", "priority": 1},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
    ]
    jjs = 8
    firing_delay = 5.3
