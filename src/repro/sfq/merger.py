"""M: merger (confluence buffer).

Forwards a pulse arriving on either input to the single output.

Table 3 shape: size 2, states 1, transitions 2. The firing delay is a
representative value (the paper does not specify one for M).
"""

from __future__ import annotations

from .base import SFQ


class M(SFQ):
    """Two-input, one-output pulse merger."""

    name = "M"
    inputs = ["a", "b"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
        {"src": "idle", "trigger": "b", "dst": "idle", "firing": "q"},
    ]
    jjs = 5
    firing_delay = 8.2
