"""NAND: the Synchronous Nand Element.

Fires ``q`` on a clock pulse unless *both* data inputs arrived during the
preceding clock period. Timing values are representative.

Table 3 shape: size 12, states 4, transitions 12 (all edges written out
singly).
"""

from __future__ import annotations

from .base import SFQ


class NAND(SFQ):
    """Synchronous Nand Element (RSFQ encoding)."""

    _setup_time = 2.9
    _hold_time = 3.1

    name = "NAND"
    inputs = ["a", "b", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "idle", "trigger": "b", "dst": "b_arr", "priority": 1},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "a_arr", "trigger": "b", "dst": "ab_arr", "priority": 1},
        {"src": "b_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "b_arr", "trigger": "a", "dst": "ab_arr", "priority": 1},
        {"src": "b_arr", "trigger": "b", "dst": "b_arr", "priority": 1},
        {"src": "ab_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "ab_arr", "trigger": "a", "dst": "ab_arr", "priority": 1},
        {"src": "ab_arr", "trigger": "b", "dst": "ab_arr", "priority": 1},
    ]
    jjs = 13
    firing_delay = 9.8
