"""The SFQ abstract cell class.

``SFQ`` is the child of ``Transitional`` described in Section 4.1: it
requires additional attributes specific to SFQ cell design — ``jjs`` (the
number of Josephson junctions, an area metric) and ``firing_delay`` — from
its implementing classes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.errors import WellFormednessError
from ..core.transitional import FiringDelaySpec, Transitional


class SFQ(Transitional):
    """Base class for SFQ cells: a Transitional plus ``jjs``/``firing_delay``.

    Subclasses must define ``jjs`` (int > 0) and ``firing_delay`` (a number,
    distribution, or per-output dict) in addition to the usual
    ``Transitional`` attributes. Both can be overridden per instance.

    ``lint_suppress`` lists static-analysis rule IDs (or ID prefixes, e.g.
    ``"PL1"``) that :mod:`repro.lint` must not report against this cell or
    any node instantiating it — the per-cell suppression channel of the rule
    framework.
    """

    jjs: int

    #: Rule IDs / prefixes the static analyzer skips for this cell.
    lint_suppress: Sequence[str] = ()

    def __init__(self, jjs: Optional[int] = None, **kwargs):
        cls = type(self)
        if not hasattr(cls, "jjs") or cls.jjs is None:
            raise WellFormednessError(
                f"{cls.__name__}: SFQ cells must define the 'jjs' attribute "
                "(number of Josephson junctions)"
            )
        if getattr(cls, "firing_delay", None) is None:
            raise WellFormednessError(
                f"{cls.__name__}: SFQ cells must define the 'firing_delay' attribute"
            )
        super().__init__(**kwargs)
        if jjs is not None:
            # bool is a subclass of int: AND(jjs=True) would silently set
            # jjs = 1 and corrupt every area/energy metric downstream.
            if isinstance(jjs, bool) or not isinstance(jjs, int) or jjs <= 0:
                raise WellFormednessError(
                    f"{cls.__name__}: jjs override must be a positive "
                    f"integer, got {jjs!r}"
                )
            self.jjs = jjs
            self.overrides["jjs"] = jjs

    @classmethod
    def lint(cls, **options):
        """Statically analyze this cell's PyLSE Machine.

        Convenience wrapper over :func:`repro.lint.lint_machine`; accepts
        the same keyword options (``select=``, ``ignore=``) and returns a
        :class:`repro.lint.LintReport`.
        """
        from ..lint import lint_machine

        return lint_machine(cls, **options)

    @classmethod
    def dsl_size(cls) -> int:
        """Number of transitions written in the DSL (Table 3's "Size").

        Roughly the number of source lines: a transition dict with a list
        trigger counts once.
        """
        return len(cls.transitions)
