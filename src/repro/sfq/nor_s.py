"""NOR: the Synchronous Nor Element.

Fires ``q`` on a clock pulse only if *no* data pulse arrived during the
preceding clock period. Timing values are representative.

Table 3 shape: size 6, states 2, transitions 6.
"""

from __future__ import annotations

from .base import SFQ


class NOR(SFQ):
    """Synchronous Nor Element (RSFQ encoding)."""

    _setup_time = 2.7
    _hold_time = 3.0

    name = "NOR"
    inputs = ["a", "b", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "pulsed", "priority": 1},
        {"src": "idle", "trigger": "b", "dst": "pulsed", "priority": 1},
        {"src": "pulsed", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "pulsed", "trigger": "a", "dst": "pulsed", "priority": 1},
        {"src": "pulsed", "trigger": "b", "dst": "pulsed", "priority": 1},
    ]
    jjs = 10
    firing_delay = 8.7
