"""Encapsulating functions for the standard cells (Section 4.1, Figure 11b).

Calling one of these (``c``, ``jtl``, ``and_s``, ...) instantiates the cell,
adds it to the working circuit with fresh output wires, and returns the
output wire(s) — the elaboration-through-execution style that makes basic
cells "resemble Python operators".

Every wrapper accepts the per-instance overrides of Section 4.1 as keyword
arguments: ``firing_delay=``, ``transition_time=`` (a ``{(src, trigger):
time}`` dict), and ``jjs=``. Single-output cells take ``name=`` to name the
output wire; multi-output cells take ``names=`` (a list or space-separated
string).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Type, Union

from ..core.circuit import working_circuit
from ..core.errors import PylseError
from ..core.wire import Wire
from .and_s import AND
from .base import SFQ
from .c_element import C
from .dro import DRO
from .dro_c import DRO_C
from .dro_sr import DRO_SR
from .inv_c import InvC
from .inv_s import INV
from .join import JOIN
from .jtl import JTL
from .merger import M
from .ndro import NDRO
from .nand_s import NAND
from .nor_s import NOR
from .or_s import OR
from .splitter import S
from .t1 import T1
from .xnor_s import XNOR
from .xor_s import XOR

Names = Union[None, str, Sequence[str]]


def _out_wires(cls: Type[SFQ], name: Optional[str], names: Names) -> List[Wire]:
    n_out = len(cls.outputs)
    if name is not None and names is not None:
        raise PylseError(f"{cls.name}: give either name= or names=, not both")
    if name is not None:
        if n_out != 1:
            raise PylseError(
                f"{cls.name} has {n_out} outputs; use names= to name them all"
            )
        return [Wire(name)]
    if names is not None:
        labels = names.split() if isinstance(names, str) else list(names)
        if len(labels) != n_out:
            raise PylseError(
                f"{cls.name}: expected {n_out} output name(s), got {len(labels)}"
            )
        return [Wire(label) for label in labels]
    return [Wire() for _ in range(n_out)]


def _place(
    cls: Type[SFQ],
    in_wires: Sequence[Wire],
    name: Optional[str] = None,
    names: Names = None,
    **overrides,
):
    """Instantiate ``cls`` in the working circuit; return its output wire(s)."""
    for w in in_wires:
        if not isinstance(w, Wire):
            raise PylseError(
                f"{cls.name}: inputs must be Wire objects, got {type(w).__name__}"
            )
    element = cls(**overrides)
    outs = _out_wires(cls, name, names)
    working_circuit().add_node(element, list(in_wires), outs)
    if len(outs) == 1:
        return outs[0]
    return tuple(outs)


def jtl(a: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Josephson transmission line: delay ``a`` by its firing delay."""
    return _place(JTL, [a], name=name, **overrides)


def s(a: Wire, names: Names = None, **overrides) -> Tuple[Wire, Wire]:
    """Splitter: duplicate ``a`` onto two fresh wires."""
    return _place(S, [a], names=names, **overrides)


def m(a: Wire, b: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Merger (confluence buffer): forward pulses from either input."""
    return _place(M, [a, b], name=name, **overrides)


def c(a: Wire, b: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """C element: pulse after the later of ``a``/``b`` (Figure 11's "high")."""
    return _place(C, [a, b], name=name, **overrides)


def c_inv(a: Wire, b: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Inverted C element: pulse after the earlier of ``a``/``b`` ("low")."""
    return _place(InvC, [a, b], name=name, **overrides)


def and_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous And Element (Figures 5, 8, 12)."""
    return _place(AND, [a, b, clk], name=name, **overrides)


def or_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Or Element."""
    return _place(OR, [a, b, clk], name=name, **overrides)


def nand_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Nand Element."""
    return _place(NAND, [a, b, clk], name=name, **overrides)


def nor_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Nor Element."""
    return _place(NOR, [a, b, clk], name=name, **overrides)


def xor_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Xor Element."""
    return _place(XOR, [a, b, clk], name=name, **overrides)


def xnor_s(a: Wire, b: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Xnor Element."""
    return _place(XNOR, [a, b, clk], name=name, **overrides)


def inv_s(a: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Synchronous Inverter."""
    return _place(INV, [a, clk], name=name, **overrides)


def dro(a: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Destructive readout (D flip-flop)."""
    return _place(DRO, [a, clk], name=name, **overrides)


def dro_sr(a: Wire, rst: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Destructive readout with set/reset."""
    return _place(DRO_SR, [a, rst, clk], name=name, **overrides)


def dro_c(a: Wire, clk: Wire, names: Names = None, **overrides) -> Tuple[Wire, Wire]:
    """Destructive readout with complementary outputs ``(q, qnot)``."""
    return _place(DRO_C, [a, clk], names=names, **overrides)


def join(
    a_t: Wire, a_f: Wire, b_t: Wire, b_f: Wire, names: Names = None, **overrides
) -> Tuple[Wire, Wire, Wire, Wire]:
    """2x2 join over dual-rail pairs; outputs ``(tt, tf, ft, ff)``."""
    return _place(JOIN, [a_t, a_f, b_t, b_f], names=names, **overrides)


def ndro(set_: Wire, rst: Wire, clk: Wire, name: Optional[str] = None, **overrides) -> Wire:
    """Non-destructive readout (library extension)."""
    return _place(NDRO, [set_, rst, clk], name=name, **overrides)


def t1(a: Wire, names: Names = None, **overrides) -> Tuple[Wire, Wire]:
    """Toggle flip-flop (library extension); outputs ``(q0, q1)``."""
    return _place(T1, [a], names=names, **overrides)


def split(wire: Wire, n: int = 2, names: Names = None, **overrides) -> Tuple[Wire, ...]:
    """Split a wire ``n`` ways via a binary tree of ``n - 1`` splitters.

    Matches Table 1: ``split(wire, n=3)`` creates two splitter elements; the
    returned wires are in left-to-right tree order. ``names`` labels the
    resulting ``n`` wires.
    """
    if n < 2:
        raise PylseError(f"split needs n >= 2, got {n}")
    labels: Optional[List[str]]
    if names is None:
        labels = None
    else:
        labels = names.split() if isinstance(names, str) else list(names)
        if len(labels) != n:
            raise PylseError(f"split: expected {n} name(s), got {len(labels)}")
    leaves: List[Wire] = [wire]
    while len(leaves) < n:
        # Split the earliest wire that is still an internal tree node,
        # keeping the tree balanced (breadth-first growth).
        target = leaves.pop(0)
        left, right = s(target, **overrides)
        leaves.extend([target_out for target_out in (left, right)])
    if labels is not None:
        for leaf, label in zip(leaves, labels):
            leaf.observe(label)
    return tuple(leaves)
