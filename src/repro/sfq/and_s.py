"""AND: the Synchronous And Element — the paper's running example.

Figure 8 gives this cell's PyLSE code; Figure 5 its PyLSE Machine. A pulse
appears on ``q`` a ``firing_delay`` (9.2 ps, the propagation delay) after a
clock pulse that ends a period in which both ``a`` and ``b`` arrived. The
hold time (3.0 ps) is modeled as the ``transition_time`` of the
clk-triggered transitions; the setup time (2.8 ps) as their
``past_constraints``. Clock transitions take priority 0, data priority 1
(Figure 5), so simultaneous arrivals are handled clock-first.

The transition order is chosen so the ``b_arr --clk--> idle`` edge has id 7,
matching the Figure 13 error message.

Table 3 shape: size 11, states 4, transitions 12.
"""

from __future__ import annotations

from .base import SFQ


class AND(SFQ):
    """Synchronous And Element (RSFQ encoding)."""

    _setup_time = 2.8
    _hold_time = 3.0

    name = "AND"
    inputs = ["a", "b", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "idle", "trigger": "b", "dst": "b_arr", "priority": 1},
        {"src": "a_arr", "trigger": "b", "dst": "ab_arr", "priority": 1},
        {"src": "a_arr", "trigger": "a", "dst": "a_arr", "priority": 1},
        {"src": "a_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "b_arr", "trigger": "a", "dst": "ab_arr", "priority": 1},
        {"src": "b_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "b_arr", "trigger": "b", "dst": "b_arr", "priority": 1},
        {"src": "ab_arr", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "ab_arr", "trigger": ["a", "b"], "dst": "ab_arr", "priority": 1},
    ]
    jjs = 11
    firing_delay = 9.2
