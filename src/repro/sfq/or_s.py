"""OR: the Synchronous Or Element.

Fires ``q`` on a clock pulse if at least one data pulse arrived during the
preceding clock period. Timing values are representative (the paper gives
the AND cell's values only).

Table 3 shape: size 4, states 2, transitions 6 (the data triggers are
written as list-trigger transitions, so 4 DSL entries expand to 6 edges).
"""

from __future__ import annotations

from .base import SFQ


class OR(SFQ):
    """Synchronous Or Element (RSFQ encoding)."""

    _setup_time = 2.6
    _hold_time = 3.1

    name = "OR"
    inputs = ["a", "b", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": ["a", "b"], "dst": "pulsed", "priority": 1},
        {"src": "pulsed", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "pulsed", "trigger": ["a", "b"], "dst": "pulsed", "priority": 1},
    ]
    jjs = 9
    firing_delay = 7.9
