"""T1: toggle flip-flop (library extension).

Alternating input pulses appear on alternating outputs — the classic RSFQ
frequency divider (chain the ``q0`` outputs for divide-by-2^n). Not in the
paper's 16-cell table; included as a library extension exercising the
multi-output machinery.
"""

from __future__ import annotations

from .base import SFQ


class T1(SFQ):
    """Toggle: odd input pulses emit on ``q0``, even ones on ``q1``."""

    name = "T1"
    inputs = ["a"]
    outputs = ["q0", "q1"]
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "flipped", "firing": "q0"},
        {"src": "flipped", "trigger": "a", "dst": "idle", "firing": "q1"},
    ]
    jjs = 7
    firing_delay = 5.9
