"""The PyLSE standard cell library: 16 basic SCE cells (Table 3).

Asynchronous cells: C, InvC, M (merger), S (splitter), JTL.
Synchronous (clocked) cells: AND, OR, NAND, NOR, XOR, XNOR, INV.
Storage cells: DRO, DRO_SR, DRO_C.
Dual-rail: JOIN (2x2 join).

Each cell class lives in its own module; the lowercase functions here
(``c``, ``jtl``, ``and_s``, ...) instantiate cells into the working circuit
and return output wires.
"""

from .and_s import AND
from .base import SFQ
from .c_element import C
from .dro import DRO
from .dro_c import DRO_C
from .dro_sr import DRO_SR
from .functions import (
    and_s,
    ndro,
    t1,
    c,
    c_inv,
    dro,
    dro_c,
    dro_sr,
    inv_s,
    join,
    jtl,
    m,
    nand_s,
    nor_s,
    or_s,
    s,
    split,
    xnor_s,
    xor_s,
)
from .inh import INH
from .inv_c import InvC
from .inv_s import INV
from .join import JOIN
from .jtl import JTL
from .merger import M
from .ndro import NDRO
from .nand_s import NAND
from .nor_s import NOR
from .or_s import OR
from .splitter import S
from .t1 import T1
from .xnor_s import XNOR
from .xor_s import XOR

#: Library extensions beyond the paper's 16 cells.
EXTENSION_CELLS: list = []

#: All sixteen basic cells, in Table 3 order.
BASIC_CELLS = [
    C,
    InvC,
    M,
    S,
    JTL,
    AND,
    OR,
    NAND,
    NOR,
    XOR,
    XNOR,
    INV,
    DRO,
    DRO_SR,
    DRO_C,
    JOIN,
]

EXTENSION_CELLS.extend([NDRO, T1, INH])

__all__ = [
    "AND", "BASIC_CELLS", "C", "DRO", "DRO_C", "DRO_SR", "EXTENSION_CELLS",
    "INH", "INV", "InvC", "JOIN", "JTL", "M", "NAND", "NDRO", "NOR", "OR", "S",
    "SFQ", "T1", "XNOR", "XOR",
    "and_s", "c", "c_inv", "dro", "dro_c", "dro_sr", "inv_s", "join", "jtl",
    "m", "nand_s", "ndro", "nor_s", "or_s", "s", "split", "t1", "xnor_s",
    "xor_s",
]
