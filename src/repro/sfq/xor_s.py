"""XOR: the Synchronous Xor Element.

Fires ``q`` on a clock pulse if exactly one data pulse arrived during the
preceding clock period. The cell uses a 3-state parity encoding (matching
Table 3's counts): ``idle`` (none arrived), ``one`` (one arrived), ``two``
(two or more arrived). As with coarse Mealy models of the physical cell,
two pulses on the *same* input within one clock period alias to "two".

Table 3 shape: size 9, states 3, transitions 9.
"""

from __future__ import annotations

from .base import SFQ


class XOR(SFQ):
    """Synchronous Xor Element (RSFQ encoding)."""

    _setup_time = 2.7
    _hold_time = 3.3

    name = "XOR"
    inputs = ["a", "b", "clk"]
    outputs = ["q"]
    transitions = [
        {"src": "idle", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "idle", "trigger": "a", "dst": "one", "priority": 1},
        {"src": "idle", "trigger": "b", "dst": "one", "priority": 1},
        {"src": "one", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "firing": "q",
         "past_constraints": {"*": _setup_time}},
        {"src": "one", "trigger": "a", "dst": "two", "priority": 1},
        {"src": "one", "trigger": "b", "dst": "two", "priority": 1},
        {"src": "two", "trigger": "clk", "dst": "idle", "priority": 0,
         "transition_time": _hold_time, "past_constraints": {"*": _setup_time}},
        {"src": "two", "trigger": "a", "dst": "two", "priority": 1},
        {"src": "two", "trigger": "b", "dst": "two", "priority": 1},
    ]
    jjs = 9
    firing_delay = 8.4
