"""Arrival-window abstract interpretation for static timing lint.

The analysis propagates per-wire pulse-arrival *intervals* ``[lo, hi]``
from the input generators' schedules through the circuit DAG, widening by
each cell's (min, max) nominal firing delay. Comparing the windows that
reach a constrained cell against its hold windows (``tau_tran``) and past
constraints (``tau_dist``) classifies every (cell, constraint) pair before
a single pulse is simulated:

* **guaranteed violation** — every concrete schedule inside the windows
  trips a Figure 6 error rule, so the simulator *will* raise the Figure 13
  error;
* **possible violation** — some schedules trip it, others do not;
* **safe** — no schedule can trip it, with a quantified margin.

Soundness of the "guaranteed" claim rests on the ``definite`` flag: an
interval is definite only if a pulse is certain to occur inside it — true
for InGen pulses and preserved through cells whose every reachable
transition on the triggering input fires the output (JTL/splitter/merger
fabric). Guaranteed violations additionally require the constraint to hold
on *every* reachable transition of the trigger (``tau_universal``), making
the claim state-blind yet sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.circuit import Circuit
from ..core.element import InGen
from ..core.errors import PylseError
from ..core.functional import Functional
from ..core.ir import compile_circuit
from ..core.machine import expand_constraints
from ..core.node import Node
from ..core.timing import nominal_delay
from ..core.transitional import Transitional
from ..core.wire import Wire

#: Cap on distinct intervals tracked per wire before collapsing to one
#: indefinite spanning window (keeps dense pulse trains from exploding).
MAX_INTERVALS_PER_WIRE = 64


@dataclass(frozen=True)
class Interval:
    """One abstract pulse: guaranteed to arrive within ``[lo, hi]`` if
    ``definite``, possibly arriving within it otherwise.

    ``parent``/``via`` record provenance: ``via`` is the hop that produced
    this interval (``in:clk@50`` at a source, ``jtl0 +[3, 3]`` through a
    cell), so walking the parent chain renders the offending
    input-to-cell path, mirroring ``SimulationError.provenance``.
    """

    lo: float
    hi: float
    definite: bool
    via: str
    parent: Optional["Interval"] = None

    def path(self, sink: str) -> str:
        """Render the provenance chain, e.g.
        ``in:clk@50 -> jtl0 +[3, 3] -> xor0.clk in [53, 53]``."""
        hops: List[str] = []
        interval: Optional[Interval] = self
        while interval is not None:
            hops.append(interval.via)
            interval = interval.parent
        hops.reverse()
        return (
            " -> ".join(hops)
            + f" -> {sink} in [{self.lo:g}, {self.hi:g}]"
        )


def _merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Sort by ``lo`` and coalesce overlapping intervals.

    Overlapping windows cannot be ordered against each other anyway, so
    merging loses no guaranteed-violation power; a merged window is definite
    if either component was (at least one pulse certainly lands inside).
    """
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda i: (i.lo, i.hi))
    merged = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        if interval.lo <= last.hi:
            merged[-1] = Interval(
                lo=last.lo,
                hi=max(last.hi, interval.hi),
                definite=last.definite or interval.definite,
                via=last.via,
                parent=last.parent,
            )
        else:
            merged.append(interval)
    if len(merged) > MAX_INTERVALS_PER_WIRE:
        first, last = merged[0], merged[-1]
        merged = [Interval(
            lo=first.lo, hi=last.hi, definite=False,
            via=first.via, parent=first.parent,
        )]
    return merged


def _trigger_windows(
    element: Transitional,
) -> Dict[Tuple[str, str], Tuple[float, float, bool]]:
    """(trigger, output) -> (min delay, max delay, definite) over the
    machine's reachable transitions.

    ``definite`` is True when *every* reachable transition on the trigger
    fires the output — a pulse on the trigger then certainly produces one on
    the output, whatever state the machine is in.
    """
    machine = element.machine
    reachable = machine.reachable_states()
    windows: Dict[Tuple[str, str], Tuple[float, float, bool]] = {}
    for trigger in machine.inputs:
        on_trigger = [
            t for t in machine.transitions
            if t.trigger == trigger and t.source in reachable
        ]
        for out in machine.outputs:
            delays = [
                nominal_delay(t.firing[out]) for t in on_trigger
                if out in t.firing
            ]
            if not delays:
                continue
            always = all(out in t.firing for t in on_trigger)
            windows[(trigger, out)] = (min(delays), max(delays), always)
    return windows


@dataclass(frozen=True)
class TimingCheck:
    """One (cell, ordered interval pair, constraint) comparison."""

    node: str
    cell: str
    #: ``"setup"`` for a past constraint (Error-kappa-Cons), ``"hold"`` for a
    #: transition-time window (Error-kappa-Tran).
    kind: str
    first_port: str
    second_port: str
    first: Interval
    second: Interval
    #: Worst-case requirement (max constraint over reachable transitions).
    required: float
    #: Requirement provable on *every* reachable transition (min; 0 when
    #: some transition lacks the constraint).
    required_universal: float
    sep_min: float
    sep_max: float

    @property
    def status(self) -> str:
        if (self.first.definite and self.second.definite
                and self.sep_min > 0
                and self.sep_max < self.required_universal):
            return "violation"
        if self.sep_max >= 0 and self.sep_min < self.required:
            return "possible"
        return "safe"

    @property
    def margin(self) -> float:
        """Slack before the constraint could fire: negative is bad."""
        return self.sep_min - self.required

    def describe(self) -> str:
        return (
            f"{self.kind} {self.required:g} ps between "
            f"{self.first_port!r} and {self.second_port!r} on {self.node}: "
            f"separation [{self.sep_min:g}, {self.sep_max:g}] ps "
            f"(margin {self.margin:g} ps)"
        )


@dataclass
class ArrivalAnalysis:
    """Result of :func:`propagate`: per-wire windows plus all timing checks."""

    arrivals: Dict[Wire, List[Interval]]
    checks: List[TimingCheck]

    def safe_margin(self) -> Optional[float]:
        """Worst margin over checks that are statically safe (None if no
        constrained pairs exist).

        Pairs whose ordering is impossible (``sep_max < 0``: the "second"
        pulse provably precedes the first) are vacuously safe and excluded —
        their margin is meaningless.
        """
        margins = [
            c.margin for c in self.checks
            if c.status == "safe" and c.sep_max >= 0
        ]
        return min(margins) if margins else None


def _node_order(circuit: Circuit) -> List[Node]:
    """Nodes in dataflow topological order (raises on cycles).

    The order comes straight from the compiled IR — one shared traversal
    instead of a private graph rebuild; any valid topological order yields
    identical arrival windows (the propagation is pure dataflow).
    """
    compiled = compile_circuit(circuit, validate=False)
    if not compiled.is_acyclic:
        raise PylseError(
            "Circuit contains feedback loops; arrival windows are unbounded"
        )
    return compiled.topo_nodes()


def propagate(circuit: Circuit) -> ArrivalAnalysis:
    """Run the interval abstract interpretation over an acyclic circuit."""
    arrivals: Dict[Wire, List[Interval]] = {}

    for node in _node_order(circuit):
        element = node.element
        if isinstance(element, InGen):
            wire = node.output_wires["out"]
            arrivals[wire] = [
                Interval(lo=t, hi=t, definite=True,
                         via=f"in:{wire.observed_as}@{t:g}")
                for t in element.times
            ]
            continue

        if isinstance(element, Transitional):
            windows = _trigger_windows(element)
            produced: Dict[str, List[Interval]] = {}
            for port, wire in node.input_wires.items():
                for interval in arrivals.get(wire, []):
                    for (trigger, out), (dmin, dmax, always) in windows.items():
                        if trigger != port:
                            continue
                        produced.setdefault(out, []).append(Interval(
                            lo=interval.lo + dmin,
                            hi=interval.hi + dmax,
                            definite=interval.definite and always,
                            via=f"{node.name} +[{dmin:g}, {dmax:g}]",
                            parent=interval,
                        ))
            for out, wire in node.output_wires.items():
                arrivals[wire] = _merge_intervals(produced.get(out, []))
            continue

        if isinstance(element, Functional):
            # A hole's Python body is opaque: any input pulse *may* produce
            # any output pulse, and none is guaranteed.
            produced = {}
            for port, wire in node.input_wires.items():
                for interval in arrivals.get(wire, []):
                    for out in element.outputs:
                        d = nominal_delay(element.delays[out])
                        produced.setdefault(out, []).append(Interval(
                            lo=interval.lo + d,
                            hi=interval.hi + d,
                            definite=False,
                            via=f"{node.name} +[{d:g}, {d:g}]",
                            parent=interval,
                        ))
            for out, wire in node.output_wires.items():
                arrivals[wire] = _merge_intervals(produced.get(out, []))
            continue

        raise PylseError(
            f"{node.name}: cannot statically analyze element {element!r}"
        )

    checks = _collect_checks(circuit, arrivals)
    return ArrivalAnalysis(arrivals=arrivals, checks=checks)


def _constraint_requirements(
    element: Transitional,
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Setup requirements: (constrained input, trigger) -> (max, universal).

    ``max`` is the worst tau_dist any reachable transition on the trigger
    imposes on the constrained input; ``universal`` is the requirement
    provable whatever state the machine is in (the min over those
    transitions, 0 when one of them lacks the constraint).
    """
    machine = element.machine
    reachable = machine.reachable_states()
    result: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for trigger in machine.inputs:
        on_trigger = [
            t for t in machine.transitions
            if t.trigger == trigger and t.source in reachable
        ]
        if not on_trigger:
            continue
        per_input: Dict[str, List[float]] = {}
        for t in on_trigger:
            expanded = dict(expand_constraints(t, machine.inputs))
            for sym in machine.inputs:
                per_input.setdefault(sym, []).append(expanded.get(sym, 0.0))
        for sym, dists in per_input.items():
            worst = max(dists)
            if worst <= 0:
                continue
            result[(sym, trigger)] = (worst, min(dists))
    return result


def _hold_requirements(
    element: Transitional,
) -> Dict[str, Tuple[float, float]]:
    """Hold requirements: triggering input -> (max, universal) tau_tran.

    A pulse on *any* input at t makes the cell unstable until
    ``t + tau_tran``; a second pulse inside that window is the
    Error-kappa-Tran case. Keyed by the *first* pulse's input.
    """
    machine = element.machine
    reachable = machine.reachable_states()
    result: Dict[str, Tuple[float, float]] = {}
    for trigger in machine.inputs:
        times = [
            t.transition_time for t in machine.transitions
            if t.trigger == trigger and t.source in reachable
        ]
        if times and max(times) > 0:
            result[trigger] = (max(times), min(times))
    return result


def _collect_checks(
    circuit: Circuit, arrivals: Dict[Wire, List[Interval]]
) -> List[TimingCheck]:
    checks: List[TimingCheck] = []
    for node in circuit.cells():
        element = node.element
        if not isinstance(element, Transitional):
            continue
        port_intervals = {
            port: arrivals.get(wire, [])
            for port, wire in node.input_wires.items()
        }

        def pairs(first_port: str, second_port: str):
            for i1 in port_intervals.get(first_port, []):
                for i2 in port_intervals.get(second_port, []):
                    if i1 is i2:
                        continue  # a pulse cannot precede itself
                    yield i1, i2

        for (constrained, trigger), (worst, universal) in \
                _constraint_requirements(element).items():
            for i1, i2 in pairs(constrained, trigger):
                checks.append(TimingCheck(
                    node=node.name, cell=element.name, kind="setup",
                    first_port=constrained, second_port=trigger,
                    first=i1, second=i2,
                    required=worst, required_universal=universal,
                    sep_min=i2.lo - i1.hi, sep_max=i2.hi - i1.lo,
                ))

        hold = _hold_requirements(element)
        if hold:
            for first_port, (worst, universal) in hold.items():
                for second_port in element.inputs:
                    for i1, i2 in pairs(first_port, second_port):
                        checks.append(TimingCheck(
                            node=node.name, cell=element.name, kind="hold",
                            first_port=first_port, second_port=second_port,
                            first=i1, second=i2,
                            required=worst, required_universal=universal,
                            sep_min=i2.lo - i1.hi, sep_max=i2.hi - i1.lo,
                        ))
    return checks
