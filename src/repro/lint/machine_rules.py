"""Machine-level lint: static checks over a single PyLSE Machine.

Works on a :class:`MachineSpec` — a normalized view of (name, inputs,
outputs, transitions, initial) that can be built from a validated
:class:`~repro.core.machine.PylseMachine`, from a
:class:`~repro.core.transitional.Transitional` class or instance, or from a
raw transition list that would *fail* machine validation. The latter is the
point: ``PylseMachine._validate`` hard-rejects incomplete or
nondeterministic machines with one exception, while the linter reports
every problem at once, as findings (PL104/PL105/PL108), alongside the
diagnostics validation silently ignores (PL101-PL103, PL106, PL107).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..core.machine import PylseMachine, Transition
from ..core.timing import nominal_delay
from ..core.transitional import Transitional, parse_transitions
from .findings import Finding, Location
from .rules import is_selected, rule

MachineLike = Union[PylseMachine, Transitional, type]


@dataclass(frozen=True)
class MachineSpec:
    """Normalized machine description the rules run against."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    transitions: Tuple[Transition, ...]
    initial: str

    def states(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for t in self.transitions:
            for state in (t.source, t.dest):
                if state not in seen:
                    seen.append(state)
        return tuple(seen)


def machine_spec(obj: MachineLike) -> MachineSpec:
    """Build a :class:`MachineSpec` from any machine-shaped object."""
    if isinstance(obj, PylseMachine):
        return MachineSpec(
            name=obj.name,
            inputs=tuple(obj.inputs),
            outputs=tuple(obj.outputs),
            transitions=tuple(obj.transitions),
            initial=obj.initial,
        )
    if isinstance(obj, Transitional):
        return machine_spec(obj.machine)
    if isinstance(obj, type) and issubclass(obj, Transitional):
        parsed = parse_transitions(
            obj.__name__, tuple(obj.outputs), obj.transitions,
            getattr(obj, "firing_delay", None),
        )
        return MachineSpec(
            name=obj.name,
            inputs=tuple(obj.inputs),
            outputs=tuple(obj.outputs),
            transitions=tuple(parsed),
            initial="idle",
        )
    raise TypeError(
        f"lint_machine expects a PylseMachine, a Transitional class, or a "
        f"Transitional instance, got {obj!r}"
    )


def _delta_map(spec: MachineSpec) -> Dict[Tuple[str, str], List[Transition]]:
    """(state, trigger) -> transitions; >1 entry means delta is not a function."""
    delta: Dict[Tuple[str, str], List[Transition]] = {}
    for t in spec.transitions:
        delta.setdefault((t.source, t.trigger), []).append(t)
    return delta


def reachable_states(spec: MachineSpec) -> FrozenSet[str]:
    """States reachable from the initial state via the available transitions."""
    delta = _delta_map(spec)
    seen = {spec.initial}
    stack = [spec.initial]
    while stack:
        state = stack.pop()
        for (source, _), transitions in delta.items():
            if source != state:
                continue
            for t in transitions:
                if t.dest not in seen:
                    seen.add(t.dest)
                    stack.append(t.dest)
    return frozenset(seen)


def _outcome(
    delta: Dict[Tuple[str, str], List[Transition]], state: str,
    first: str, second: str,
) -> Optional[Tuple[str, Tuple[Tuple[str, int], ...]]]:
    """Final state + fired-output multiset of dispatching ``first`` then
    ``second`` from ``state`` (timing ignored); None if a step is missing."""
    fired: Counter = Counter()
    for sym in (first, second):
        candidates = delta.get((state, sym))
        if not candidates or len(candidates) > 1:
            return None
        transition = candidates[0]
        fired.update(transition.firing.keys())
        state = transition.dest
    return state, tuple(sorted(fired.items()))


def machine_findings(
    spec: MachineSpec,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    design: Optional[str] = None,
    nodes: Sequence[str] = (),
) -> List[Finding]:
    """Run every machine rule against one spec.

    ``nodes`` lists the placed instances sharing this machine (attached to
    the findings' ``data`` so circuit reports can say *where*).
    """
    findings: List[Finding] = []
    data = {"nodes": list(nodes)} if nodes else None

    def emit(rule_id: str, message: str, **location_fields) -> None:
        if not is_selected(rule_id, select, ignore):
            return
        findings.append(Finding(
            rule=rule_id,
            severity=rule(rule_id).severity,
            message=message,
            location=Location(design=design, machine=spec.name,
                              **location_fields),
            data=data,
        ))

    delta = _delta_map(spec)
    states = spec.states()
    input_set = set(spec.inputs)
    reachable = reachable_states(spec)

    # PL108: delta is not a function.
    for (state, trigger), transitions in delta.items():
        if len(transitions) > 1:
            ids = ", ".join(str(t.id) for t in transitions)
            emit("PL108",
                 f"transitions {ids} all leave state {state!r} on input "
                 f"{trigger!r}; delta must be a function",
                 state=state)

    # PL104: incomplete input alphabet.
    for state in states:
        missing = [sym for sym in spec.inputs if (state, sym) not in delta]
        if missing:
            emit("PL104",
                 f"state {state!r} has no transition for input(s) "
                 f"{missing}; delta must be total over the alphabet",
                 state=state)

    # PL105: past constraints naming unknown symbols.
    for t in spec.transitions:
        unknown = sorted(
            sym for sym in t.past_constraints
            if sym != "*" and sym not in input_set
        )
        if unknown:
            emit("PL105",
                 f"transition {t.id} ({t.label}) constrains unknown "
                 f"input(s) {unknown}; use declared inputs or '*'",
                 state=t.source, transition_id=t.id)

    # PL101: unreachable states.
    for state in states:
        if state not in reachable:
            emit("PL101",
                 f"state {state!r} is unreachable from the initial state "
                 f"{spec.initial!r}",
                 state=state)

    # PL102: dead transitions (leaving unreachable states).
    for t in spec.transitions:
        if t.source not in reachable:
            emit("PL102",
                 f"transition {t.id} ({t.label}) can never be taken: its "
                 f"source state is unreachable",
                 state=t.source, transition_id=t.id)

    # PL103: declared outputs never fired from any reachable state.
    fired_outputs = {
        out
        for t in spec.transitions
        if t.source in reachable
        for out in t.firing
    }
    for out in spec.outputs:
        if out not in fired_outputs:
            emit("PL103",
                 f"output {out!r} is never fired by any reachable "
                 f"transition; downstream consumers will wait forever",
                 port=out)

    # PL106: transition time exceeding the minimum firing delay it gates.
    for t in spec.transitions:
        if t.source not in reachable or not t.firing or t.transition_time <= 0:
            continue
        min_fire = min(nominal_delay(d) for d in t.firing.values())
        if t.transition_time > min_fire:
            emit("PL106",
                 f"transition {t.id} ({t.label}) fires after "
                 f"{min_fire:g} ps but keeps the cell unstable for "
                 f"{t.transition_time:g} ps: the output pulse leaves while "
                 f"the producer cannot yet legally accept input",
                 state=t.source, transition_id=t.id)

    # PL107: equal-priority triggers whose dispatch order matters.
    for state in sorted(reachable):
        outgoing = [
            ts[0] for (src, _), ts in delta.items()
            if src == state and len(ts) == 1
        ]
        by_priority: Dict[int, List[Transition]] = {}
        for t in outgoing:
            by_priority.setdefault(t.priority, []).append(t)
        for priority, group in sorted(by_priority.items()):
            group = sorted(group, key=lambda t: t.trigger)
            for i, first in enumerate(group):
                for second in group[i + 1:]:
                    a = _outcome(delta, state, first.trigger, second.trigger)
                    b = _outcome(delta, state, second.trigger, first.trigger)
                    if a is not None and b is not None and a != b:
                        emit("PL107",
                             f"simultaneous {first.trigger!r}/"
                             f"{second.trigger!r} in state {state!r} share "
                             f"priority {priority} but dispatch order "
                             f"changes the outcome ({a[0]!r} vs {b[0]!r}); "
                             f"the tie is resolved nondeterministically",
                             state=state)
    return findings
