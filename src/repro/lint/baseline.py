"""Lint baselines: CI fails only on *new* findings.

A baseline file records a stable fingerprint for every finding the team has
seen and accepted (or not yet fixed). A later lint run compared against the
baseline fails only when it produces a finding whose fingerprint is not in
the file — pre-existing debt never blocks CI, regressions always do, and
fixed findings are reported as resolved so the baseline can be re-written.

Fingerprints are content-addressed, not positional: ``sha256(rule id |
structural hash of the design's compiled IR | canonical location)``. The
structural hash makes a fingerprint survive message-wording changes and
re-orderings but expire when the design itself changes shape — exactly the
invalidation the incremental reach cache uses
(:func:`repro.core.ir.lint_cache_key`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from .findings import Finding
from .report import LintReport

BASELINE_FORMAT = "repro-lint-baseline-v1"
_FINGERPRINT_LEN = 16


def finding_fingerprint(finding: Finding, structural_hash: Optional[str]) -> str:
    """Stable ID for one finding: rule | design structure | location.

    Deliberately excludes the message text (wording changes must not churn
    baselines) and the severity (PL402/PL403 confidence grading moves
    severity without changing *which* finding it is).
    """
    material = "|".join((
        finding.rule,
        structural_hash or "",
        finding.location.qualified_name(),
    ))
    return hashlib.sha256(material.encode()).hexdigest()[:_FINGERPRINT_LEN]


def _entries(reports: Sequence[LintReport]) -> List[dict]:
    entries = []
    for report in reports:
        for finding in report.findings:
            entries.append({
                "fingerprint": finding_fingerprint(
                    finding, report.structural_hash
                ),
                "rule": finding.rule,
                "design": report.design,
                "location": finding.location.qualified_name(),
                "severity": finding.severity.label,
            })
    return entries


def baseline_payload(reports: Sequence[LintReport]) -> dict:
    """The committed baseline document for a batch of reports."""
    entries = sorted(
        _entries(reports),
        key=lambda e: (e["design"] or "", e["rule"], e["location"]),
    )
    return {"format": BASELINE_FORMAT, "findings": entries}


def write_baseline(path: str, reports: Sequence[LintReport]) -> int:
    """Write (or re-write) the baseline file; returns the entry count."""
    payload = baseline_payload(reports)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(payload["findings"])


def load_baseline(path: str) -> Dict[str, dict]:
    """fingerprint -> entry from a baseline file (validating the format)."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != BASELINE_FORMAT:
        raise PylseError(
            f"{path} is not a {BASELINE_FORMAT} file; regenerate it with "
            f"'repro lint --update-baseline'"
        )
    return {e["fingerprint"]: e for e in payload.get("findings", [])}


@dataclass
class BaselineComparison:
    """New / known / resolved findings relative to a baseline."""

    new: List[Tuple[LintReport, Finding]] = field(default_factory=list)
    known: List[Tuple[LintReport, Finding]] = field(default_factory=list)
    #: Baseline entries no current finding matches (candidates for rewrite).
    resolved: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """CI gate: pass iff nothing new appeared."""
        return not self.new

    def render_text(self) -> str:
        lines: List[str] = []
        if self.new:
            lines.append(f"{len(self.new)} NEW finding(s) not in baseline:")
            for report, finding in self.new:
                prefix = f"[{report.design}] " if report.design else ""
                lines.append(f"  {prefix}{finding.render()}")
        for entry in self.resolved:
            prefix = f"[{entry['design']}] " if entry.get("design") else ""
            lines.append(
                f"resolved: {prefix}{entry['rule']} at {entry['location']} "
                f"no longer fires (rewrite the baseline to drop it)"
            )
        lines.append(
            f"baseline: {len(self.new)} new, {len(self.known)} known, "
            f"{len(self.resolved)} resolved"
        )
        return "\n".join(lines)


def compare_with_baseline(
    reports: Sequence[LintReport], baseline: Dict[str, dict]
) -> BaselineComparison:
    """Split current findings into new vs. known, and spot resolved ones."""
    comparison = BaselineComparison()
    seen: set = set()
    for report in reports:
        for finding in report.findings:
            fp = finding_fingerprint(finding, report.structural_hash)
            seen.add(fp)
            if fp in baseline:
                comparison.known.append((report, finding))
            else:
                comparison.new.append((report, finding))
    comparison.resolved = [
        entry for fp, entry in sorted(baseline.items()) if fp not in seen
    ]
    return comparison
