"""Lint reports and the text / JSON / SARIF 2.1.0 emitters.

A :class:`LintReport` bundles the findings for one lint target (a design,
an ad-hoc circuit, or a single machine) with the timing summary the
interval analysis produced. The module-level emitters accept a list of
reports so ``repro lint --all`` renders every registry design into a single
document — one SARIF ``run``, one JSON payload, one text stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .findings import Finding, Severity
from .rules import sarif_rule_index

#: SARIF 2.1.0 constants.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"


@dataclass
class LintReport:
    """Findings plus analysis summaries for one lint target."""

    findings: Tuple[Finding, ...]
    #: Registry design name, or None for ad-hoc circuits / single machines.
    design: Optional[str] = None
    #: Timing summary from the interval analysis: ``checks`` (pair count),
    #: ``safe_margin`` (worst provable slack in ps, None when unconstrained).
    timing: Mapping[str, object] = field(default_factory=dict)
    #: True when the timing analysis was skipped (feedback loops).
    timing_skipped: bool = False
    #: Structural clock summary: input label -> {"sinks": n, "skew": (lo, hi)}.
    clocks: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: The compiled circuit's structural hash (baseline fingerprints key on
    #: it); None for single-machine reports.
    structural_hash: Optional[str] = None
    #: Reachability (PL4xx) summary: states/transitions/elapsed/truncated/
    #: cached — empty when the layer did not run.
    reach: Mapping[str, object] = field(default_factory=dict)
    #: Why the reachability layer was skipped (requested but not runnable:
    #: Functional holes, no cells); None when it ran or was not requested.
    reach_skipped: Optional[str] = None

    def counts(self) -> Dict[str, int]:
        result = {s.label: 0 for s in Severity}
        for finding in self.findings:
            result[finding.severity.label] += 1
        return result

    def max_severity(self) -> Optional[Severity]:
        return max((f.severity for f in self.findings), default=None)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    def render_text(self) -> str:
        lines: List[str] = []
        title = self.design if self.design is not None else "<circuit>"
        lines.append(f"== {title} ==")
        for finding in self.findings:
            lines.append(finding.render())
        for label, info in sorted(self.clocks.items()):
            lo, hi = info["skew"]  # type: ignore[misc]
            lines.append(
                f"clock {label!r}: reaches {info['sinks']} clocked cell(s), "
                f"arrival window [{lo:g}, {hi:g}] ps (skew {hi - lo:g} ps)"
            )
        if self.reach_skipped is not None:
            lines.append(f"reach: skipped ({self.reach_skipped})")
        elif self.reach:
            trunc = (
                f", truncated ({self.reach.get('truncation_reason')})"
                if self.reach.get("truncated") else ""
            )
            cached = " [cached]" if self.reach.get("cached") else ""
            lines.append(
                f"reach: {self.reach.get('states', 0)} state(s), "
                f"{self.reach.get('transitions', 0)} transition(s) explored "
                f"in {self.reach.get('elapsed', 0.0):.2f}s{trunc}{cached}"
            )
        if self.timing_skipped:
            lines.append("timing: skipped (feedback loops)")
        elif self.timing:
            margin = self.timing.get("safe_margin")
            margin_text = (
                f", worst safe margin {margin:g} ps" if margin is not None else ""
            )
            lines.append(
                f"timing: {self.timing.get('checks', 0)} constraint pair(s) "
                f"checked{margin_text}"
            )
        counts = self.counts()
        lines.append(
            f"summary: {counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['info']} info"
        )
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        payload: dict = {
            "design": self.design,
            "findings": [f.to_jsonable() for f in self.findings],
            "counts": self.counts(),
        }
        if self.structural_hash is not None:
            payload["structural_hash"] = self.structural_hash
        if self.reach_skipped is not None:
            payload["reach"] = {"skipped": self.reach_skipped}
        elif self.reach:
            payload["reach"] = dict(self.reach)
        if self.clocks:
            payload["clocks"] = {
                label: {"sinks": info["sinks"], "skew": list(info["skew"])}  # type: ignore[index]
                for label, info in self.clocks.items()
            }
        if self.timing_skipped:
            payload["timing"] = {"skipped": True}
        elif self.timing:
            payload["timing"] = dict(self.timing)
        return payload


def max_severity(reports: Sequence[LintReport]) -> Optional[Severity]:
    """Worst severity across a batch of reports (None when all clean)."""
    severities = [s for r in reports if (s := r.max_severity()) is not None]
    return max(severities, default=None)


def render_text(reports: Sequence[LintReport]) -> str:
    """The human-readable multi-design report."""
    return "\n\n".join(r.render_text() for r in reports)


def json_payload(reports: Sequence[LintReport]) -> dict:
    """The machine-readable report (``--format json``)."""
    return {
        "format": "repro-lint-v1",
        "tool": TOOL_NAME,
        "reports": [r.to_jsonable() for r in reports],
    }


def sarif_payload(reports: Sequence[LintReport]) -> dict:
    """A SARIF 2.1.0 log with one run covering every report.

    Findings become ``results`` whose ``logicalLocations`` carry the
    design-qualified element path; the full rule catalog rides along in
    ``tool.driver.rules`` so viewers can show titles and rationales.
    """
    rules, index = sarif_rule_index()
    results = []
    for report in reports:
        for finding in report.findings:
            qualified = finding.location.qualified_name()
            if report.design is not None:
                qualified = f"{report.design}::{qualified}"
            result: dict = {
                "ruleId": finding.rule,
                "ruleIndex": index[finding.rule],
                "level": finding.severity.sarif_level,
                "message": {"text": finding.message},
                "locations": [{
                    "logicalLocations": [{
                        "name": finding.location.qualified_name(),
                        "fullyQualifiedName": qualified,
                        "kind": finding.location.kind,
                    }],
                }],
            }
            properties: dict = {}
            if report.design is not None:
                properties["design"] = report.design
            if finding.path:
                properties["path"] = list(finding.path)
            if finding.data:
                properties.update(finding.data)
            if properties:
                result["properties"] = properties
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://doi.org/10.1145/3519939.3523438",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
