"""The lint rule registry: IDs, severities, rationales, and selection.

Every diagnostic the analyzer can emit is declared here once, with a paper
citation explaining why it matters. The registry drives three things: the
``--select``/``--ignore`` CLI filters (prefix matching, so ``PL1`` selects
the whole machine-lint family), the SARIF ``rules`` array, and the
``docs/lint.md`` catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Severity


@dataclass(frozen=True)
class Rule:
    """One registered diagnostic kind."""

    id: str
    severity: Severity
    title: str
    #: Why the rule exists, citing the paper section it operationalizes.
    rationale: str


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"Duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def rule(rule_id: str) -> Rule:
    """Look up a rule by exact ID."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"Unknown lint rule {rule_id!r}; known rules: {sorted(_REGISTRY)}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, in ID order (stable for SARIF rule indices)."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def matches(rule_id: str, patterns: Iterable[str]) -> bool:
    """Prefix matching: ``PL1`` matches ``PL101``; ``PL301`` matches itself."""
    return any(rule_id.startswith(p) for p in patterns)


def is_selected(
    rule_id: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> bool:
    """Apply ``--select`` / ``--ignore`` semantics to one rule ID.

    ``select=None`` means "all rules"; ``ignore`` always wins over
    ``select``.
    """
    select = tuple(select) if select is not None else None
    ignore = tuple(ignore) if ignore is not None else ()
    if matches(rule_id, ignore):
        return False
    if select is not None and not matches(rule_id, select):
        return False
    return True


# ----------------------------------------------------------------------
# Machine lint (PL1xx) — Section 3 / Section 4.2 well-formedness beyond
# what PylseMachine._validate hard-rejects.
# ----------------------------------------------------------------------
PL101 = register(Rule(
    "PL101", Severity.WARNING, "unreachable state",
    "A state that no input sequence can reach from q_init is dead weight in "
    "the Definition 3.1 tuple and usually indicates a mis-wired transition "
    "(Section 4.2 only checks that delta is total, not that it is live).",
))
PL102 = register(Rule(
    "PL102", Severity.WARNING, "dead transition",
    "A transition leaving an unreachable state can never be taken, so its "
    "firing outputs and constraints are untestable (Figure 4 anatomy with "
    "no dynamic counterpart).",
))
PL103 = register(Rule(
    "PL103", Severity.WARNING, "output never fired",
    "An output in Lambda that no reachable transition fires will never "
    "pulse; downstream consumers wait forever (Section 3.1 requires at "
    "least one firing transition, but not per output).",
))
PL104 = register(Rule(
    "PL104", Severity.ERROR, "incomplete input alphabet",
    "delta must be a total function (Definition 3.1): a state missing an "
    "edge for some input makes behavior undefined exactly when an SFQ pulse "
    "can still physically arrive. PylseMachine rejects this at build time; "
    "the rule reports it statically for raw cell definitions.",
))
PL105 = register(Rule(
    "PL105", Severity.ERROR, "past constraint on unknown input",
    "A tau_dist constraint (Figure 4) naming a symbol outside Sigma can "
    "never be checked by the Error-kappa-Cons rule of Figure 6 and hides a "
    "typo in the cell definition.",
))
PL106 = register(Rule(
    "PL106", Severity.WARNING, "transition time exceeds gated firing delay",
    "A transition whose tau_tran is longer than the smallest tau_fire it "
    "gates emits its pulse while the cell is still unstable: downstream "
    "sees the output before the producer could legally accept another "
    "input, which inverts the Figure 6 hold-window intuition.",
))
PL107 = register(Rule(
    "PL107", Severity.INFO, "ambiguous simultaneous dispatch",
    "Two triggers with equal priority from the same state whose dispatch "
    "orders produce different configurations or outputs: the Dispatch "
    "Relation (Section 3.2) resolves the tie nondeterministically, so "
    "simultaneous arrival makes the cell's behavior schedule-dependent.",
))
PL108 = register(Rule(
    "PL108", Severity.ERROR, "nondeterministic delta",
    "Two transitions leave the same state on the same trigger: delta "
    "(Definition 3.1) must be a function. PylseMachine rejects this at "
    "build time; the rule reports it statically for raw cell definitions.",
))

# ----------------------------------------------------------------------
# Circuit structural lint (PL2xx) — Section 4.2 circuit-level checks.
# ----------------------------------------------------------------------
PL201 = register(Rule(
    "PL201", Severity.ERROR, "combinational feedback loop",
    "A cycle through cells that are all single-state (stateless pulse "
    "fabric: JTL, splitter, merger) re-circulates every pulse forever — "
    "the simulation of Section 4.3 never drains its event heap. A legal "
    "loop must contain a state-holding cell (DRO, C, ...).",
))
PL202 = register(Rule(
    "PL202", Severity.WARNING, "dangling wire",
    "A driven wire that is neither consumed by a cell nor observed under a "
    "user name: its pulses are computed and then dropped. Often a spare "
    "splitter leaf (harmless) or a forgotten connection (not).",
))
PL203 = register(Rule(
    "PL203", Severity.WARNING, "unreachable clock sink",
    "A cell's clk port that no circuit input can reach: the gate will "
    "never read out (RSFQ gates are clocked pulse consumers, Section 2). "
    "Clock reachability is structural, replacing name-prefix heuristics.",
))
PL204 = register(Rule(
    "PL204", Severity.ERROR, "undriven input wire",
    "A wire consumed by an element input with no driver: the Section 4.2 "
    "single-driver invariant is violated and simulation would reject the "
    "circuit at validate() time.",
))
PL205 = register(Rule(
    "PL205", Severity.WARNING, "imbalanced convergent arrivals",
    "Data inputs of a convergence cell whose accumulated path delays "
    "differ (Figure 11's manual arithmetic, automated): the first-arriving "
    "pulse waits in cell state, so large skew erodes timing margin and "
    "can reorder logically simultaneous pulses.",
))

# ----------------------------------------------------------------------
# Timing lint via arrival-window abstract interpretation (PL3xx) —
# Figure 6 error rules, checked before any pulse is dispatched.
# ----------------------------------------------------------------------
PL301 = register(Rule(
    "PL301", Severity.ERROR, "statically violated timing constraint",
    "Interval propagation of pulse-arrival windows proves that every "
    "possible schedule violates a hold window (Error-kappa-Tran) or past "
    "constraint (Error-kappa-Cons) of Figure 6: the simulator is "
    "guaranteed to raise the Figure 13 error. The finding names the "
    "offending input-to-cell paths, like SimulationError.provenance does "
    "dynamically.",
))
PL302 = register(Rule(
    "PL302", Severity.WARNING, "possible timing violation",
    "The arrival windows overlap a forbidden region but do not prove a "
    "violation: whether the Figure 13 error fires depends on the concrete "
    "schedule or on delay variability. The margin says how close.",
))
PL303 = register(Rule(
    "PL303", Severity.INFO, "statically safe timing",
    "All (cell, constraint) pairs are provably satisfied by the arrival "
    "windows; the worst margin quantifies the slack available before any "
    "Figure 6 error rule could fire (compare Section 4.4 variability).",
))

# ----------------------------------------------------------------------
# Reachability lint via zone-based model checking (PL4xx) — the Section
# 5.3 UPPAAL workflow run exhaustively as a lint pass over the compiled
# IR, with concrete witnesses replayed through the simulator.
# ----------------------------------------------------------------------
PL401 = register(Rule(
    "PL401", Severity.INFO, "transition dead in circuit context",
    "Exhaustive zone-graph exploration of the translated TA network "
    "(Figure 14) proves a cell transition never fires under this circuit's "
    "wiring and input schedules. Unlike PL102 (dead at the machine level), "
    "the transition is well-formed in isolation — the *circuit* starves "
    "it, so its firing outputs and constraints are untested dead weight. "
    "Only reported when exploration completed: a truncated run cannot "
    "prove absence.",
))
PL402 = register(Rule(
    "PL402", Severity.WARNING, "input-order race",
    "Two pulses can provably reach one cell at the same instant (their "
    "arrival zones overlap in the zone graph) and the dispatch order "
    "changes the reached state or fired outputs: the Dispatch Relation "
    "(Section 3.2) resolves the tie nondeterministically, so the circuit's "
    "behavior is schedule-dependent. The reachability half upgrades PL107 "
    "(which only says the *machine* is order-sensitive) to a deliverable "
    "race in this circuit; seed-swept simulator replay grades the finding "
    "confirmed or possible.",
))
PL403 = register(Rule(
    "PL403", Severity.ERROR, "reachable timing violation with witness",
    "The zone-based model checker (the offline verifyta of Section 5.3) "
    "proves a setup (Error-kappa-Cons) or hold (Error-kappa-Tran) error "
    "location of Figure 14 is reachable, and the finding carries the "
    "concrete witness schedule extracted from the zone graph. Witnesses "
    "are replayed through Simulation.simulate: a reproduced Figure 13 "
    "error confirms the finding (with the pulse's causal chain attached); "
    "a refuted witness downgrades it to 'possible' — the TA semantics "
    "interleaves simultaneous pulses one handshake at a time while the "
    "simulator dispatches them as one atomic group, a known "
    "over-approximation.",
))
PL404 = register(Rule(
    "PL404", Severity.WARNING, "stuck state",
    "A reachable state with no successor in which some automaton is still "
    "mid-work: a cell holds an undelivered pulse mid-transition, or an "
    "input schedule still has pulses to emit but no cell can consume "
    "them. 'Good' deadlock — every machine at rest with the finite input "
    "schedule exhausted — is expected on any finite stimulus and is *not* "
    "reported (Section 5.3 makes exactly this point about plain deadlock "
    "checking).",
))


def sarif_rule_index() -> Tuple[List[dict], Dict[str, int]]:
    """The SARIF ``rules`` array plus ``rule id -> index`` mapping."""
    rules = all_rules()
    payload = [
        {
            "id": r.id,
            "name": r.title.title().replace(" ", ""),
            "shortDescription": {"text": r.title},
            "fullDescription": {"text": r.rationale},
            "defaultConfiguration": {"level": r.severity.sarif_level},
        }
        for r in rules
    ]
    return payload, {r.id: i for i, r in enumerate(rules)}
