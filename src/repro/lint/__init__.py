"""Static analysis for PyLSE circuits and machines (the ``repro lint`` core).

The package statically answers, before any pulse is simulated, the
questions Sections 3 and 4.2 of the paper raise dynamically:

* is every machine well-formed *and* live (PL1xx)?
* is the circuit structurally sound — single drivers, no dangling wires,
  no stateless feedback loops, reachable clocks, balanced convergent paths
  (PL2xx)?
* can any concrete schedule trip a Figure 6 timing-error rule (PL3xx),
  proved by interval abstract interpretation of pulse-arrival windows?
* what does *exhaustive* zone-based model checking of the translated TA
  network prove (PL4xx) — dead transitions in circuit context, input-order
  races, reachable timing violations with replayed witness schedules, and
  stuck states — cached incrementally by structural hash
  (:mod:`repro.lint.reach_rules`)?

Public API::

    from repro.lint import lint_circuit, lint_machine

    report = lint_circuit()     # the working circuit
    report = lint_machine(AND)  # one cell class

plus the emitters (``render_text``, ``json_payload``, ``sarif_payload``)
and the rule registry (``all_rules``, ``rule``).
"""

from .baseline import (
    BaselineComparison,
    compare_with_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from .circuit_rules import lint_circuit, lint_machine
from .findings import Finding, Location, Severity
from .intervals import ArrivalAnalysis, Interval, TimingCheck, propagate
from .machine_rules import MachineSpec, machine_findings, machine_spec
from .reach_rules import (
    REACH_RULES,
    ReachAnalysis,
    ReachBudget,
    analyze_reach,
    clear_reach_cache,
    reach_cache_stats,
)
from .report import (
    LintReport,
    json_payload,
    max_severity,
    render_text,
    sarif_payload,
)
from .rules import Rule, all_rules, is_selected, rule, sarif_rule_index
from .runner import lint_designs

__all__ = [
    "ArrivalAnalysis",
    "BaselineComparison",
    "Finding",
    "Interval",
    "LintReport",
    "Location",
    "MachineSpec",
    "REACH_RULES",
    "ReachAnalysis",
    "ReachBudget",
    "Rule",
    "Severity",
    "TimingCheck",
    "all_rules",
    "analyze_reach",
    "clear_reach_cache",
    "compare_with_baseline",
    "finding_fingerprint",
    "is_selected",
    "json_payload",
    "lint_circuit",
    "lint_designs",
    "lint_machine",
    "load_baseline",
    "machine_findings",
    "machine_spec",
    "max_severity",
    "propagate",
    "reach_cache_stats",
    "render_text",
    "rule",
    "sarif_payload",
    "sarif_rule_index",
    "write_baseline",
]
