"""Reachability lint (PL4xx): zone-based model checking as a lint pass.

This module bridges the precise exploration engine of :mod:`repro.mc` and
the lint layer: the circuit is translated to its TA network (Figure 14),
the zone graph is explored exhaustively (within an explicit budget), and
what the exploration proves becomes findings:

* **PL401** — a cell transition that never fires under this circuit's
  wiring and input schedules (dead *in context*, unlike PL102's dead at
  the machine level). Emitted only when exploration completed.
* **PL402** — an input-order race: two pulses whose arrival zones overlap
  (they can reach one cell at the same instant) and whose dispatch order
  changes the reached state or fired outputs.
* **PL403** — a statically reachable setup/hold violation, carrying a
  **concrete witness schedule** extracted from the zone graph.
* **PL404** — a stuck state: a reachable dead end in which some automaton
  is still mid-work ("good" deadlock on an exhausted finite schedule is
  expected and not reported, per Section 5.3).

Every PL403/PL402 finding is graded by **replaying its witness through**
``Simulation.simulate``: a reproduced violation confirms the finding (and
attaches the pulse's causal chain from :mod:`repro.obs`); a refuted
witness downgrades it to ``possible``. The systematic downgrade cause is a
real semantic gap: the TA model interleaves same-instant pulses one
channel handshake at a time (so a hold-error location can be entered
between them), while the simulator dispatches a simultaneous group
atomically.

The whole analysis sits behind an **incremental cache** keyed by
:func:`repro.core.ir.lint_cache_key` — ``(hash_version, structural_hash,
rule subset, tolerance, budget)`` — with the same contract as the serve
result cache: a warm re-lint of an unchanged design is a dict hit.
Budgets are explicit, never silent: a truncated exploration is reported
as ``truncated`` with its reason, PL401 is withheld (absence unproven),
and the remaining findings are a lower bound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cache import (
    DiskCache,
    LINT_NAMESPACE,
    LRUCache,
    MISSING,
    TieredCache,
)
from ..core.circuit import Circuit
from ..core.errors import PylseError, SimulationError
from ..core.ir import CompiledCircuit, compile_circuit, lint_cache_key
from ..core.simulation import Simulation
from ..core.transitional import Transitional
from ..mc.explorer import ModelChecker
from ..obs import Observer
from ..ta.automaton import SCALE
from ..ta.queries import deadlock_query, no_error_query
from ..ta.translate import channel_name, translate_circuit
from .machine_rules import _delta_map, _outcome, machine_spec, reachable_states

#: The reachability rule family, in ID order.
REACH_RULES: Tuple[str, ...] = ("PL401", "PL402", "PL403", "PL404")

#: Default exploration budget: generous enough to exhaust every basic cell
#: and the small Table 3 designs, bounded enough that a pathological or
#: huge design cannot hang a lint run (it truncates, explicitly).
DEFAULT_MAX_STATES = 20_000
DEFAULT_TIME_LIMIT = 15.0

#: Seeds swept when grading a PL402 race: the simulator's simultaneous-
#: group tie-break is a seeded shuffle, so outcome differences across
#: seeds demonstrate the schedule-dependence dynamically.
RACE_REPLAY_SEEDS: Tuple[int, ...] = (0, 1, 2, 3)


@dataclass(frozen=True)
class ReachBudget:
    """Explicit state/time budget for one exploration (never silent)."""

    max_states: Optional[int] = DEFAULT_MAX_STATES
    time_limit: Optional[float] = DEFAULT_TIME_LIMIT


@dataclass(frozen=True)
class WitnessStep:
    """One counterexample step in circuit time (picoseconds)."""

    label: str
    time: float
    #: Latest time the state admits; ``None`` when its invariants leave
    #: the window open (the step still *can* happen at ``time``).
    time_max: Optional[float]

    def render(self) -> str:
        if self.time_max is not None and self.time_max != self.time:
            return f"t in [{self.time:g}, {self.time_max:g}]: {self.label}"
        return f"t={self.time:g}: {self.label}"


@dataclass(frozen=True)
class Witness:
    """A concrete witness schedule extracted from the zone graph.

    ``inputs`` is the input schedule that drives the circuit into the
    violating state (the environment TAs replay exactly these pulses), and
    ``steps`` the fired-transition path with the global-time window of
    every intermediate state. Replaying the circuit as scheduled —
    ``Simulation(circuit).simulate()`` — exercises the witness.
    """

    inputs: Tuple[Tuple[str, Tuple[float, ...]], ...]
    steps: Tuple[WitnessStep, ...]

    def schedule(self) -> Dict[str, List[float]]:
        """The input schedule as a plain dict (label -> pulse times)."""
        return {label: list(times) for label, times in self.inputs}

    def render(self) -> List[str]:
        lines = [
            f"input {label}: pulses at {', '.join(f'{t:g}' for t in times)} ps"
            for label, times in self.inputs
        ]
        lines.extend(step.render() for step in self.steps)
        return lines

    def to_jsonable(self) -> dict:
        return {
            "inputs": {label: list(times) for label, times in self.inputs},
            "steps": [
                {"label": s.label, "time": s.time, "time_max": s.time_max}
                for s in self.steps
            ],
        }


@dataclass(frozen=True)
class DeadTransition:
    """PL401 raw material: a transition no reachable state ever takes."""

    node: str
    cell: str
    transition_id: int
    source_state: str
    trigger: str
    label: str


@dataclass(frozen=True)
class RaceFinding:
    """PL402 raw material: a deliverable, outcome-changing race."""

    node: str
    cell: str
    state: str
    port_a: str
    port_b: str
    priority: int
    outcome_a: str
    outcome_b: str
    window: Tuple[float, Optional[float]]
    confidence: str      # 'confirmed' | 'possible'
    replay: str


@dataclass(frozen=True)
class TimingWitness:
    """PL403 raw material: a reachable error location plus its witness."""

    node: str
    cell: str
    error_location: str
    kind: str            # 'setup' | 'hold'
    symbol: str
    time: float          # earliest violation instant, ps
    witness: Witness
    confidence: str      # 'confirmed' | 'possible'
    replay: str
    provenance: Tuple[str, ...]


@dataclass(frozen=True)
class StuckState:
    """PL404 raw material: a dead end with work still pending."""

    anchor: Optional[str]          # node name to hang the finding on
    pending: Tuple[str, ...]       # human-readable "who is stuck where"
    steps: Tuple[WitnessStep, ...]


@dataclass(frozen=True)
class ReachAnalysis:
    """Everything one exploration proved, design-name-agnostic.

    This is the cached value: it holds only strings and numbers (no
    circuit references), so serving it to a later ``lint_circuit`` call on
    a structurally identical circuit is sound. Findings are materialized
    per call from this record.
    """

    digest: str
    rules: Tuple[str, ...]
    budget: ReachBudget
    states_explored: int
    transitions_fired: int
    elapsed_seconds: float
    truncated: bool
    truncation_reason: Optional[str]
    #: Why the analysis did not run at all (no cells, Functional holes);
    #: everything below is empty when set.
    skipped: Optional[str]
    dead: Tuple[DeadTransition, ...]
    races: Tuple[RaceFinding, ...]
    timing: Tuple[TimingWitness, ...]
    stuck: Tuple[StuckState, ...]

    def summary(self) -> Dict[str, object]:
        """The report-facing summary block (see ``LintReport.reach``)."""
        return {
            "states": self.states_explored,
            "transitions": self.transitions_fired,
            "elapsed": self.elapsed_seconds,
            "truncated": self.truncated,
            "truncation_reason": self.truncation_reason,
            "rules": list(self.rules),
            "budget": {
                "max_states": self.budget.max_states,
                "time_limit": self.budget.time_limit,
            },
        }


# ----------------------------------------------------------------------
# The reach-analysis JSON codec (the disk tier's payload format)
# ----------------------------------------------------------------------
#: Format tag of a serialized :class:`ReachAnalysis` (bump on shape
#: changes: the persistent tier quarantines documents it cannot decode).
REACH_ANALYSIS_FORMAT = "repro-reach-analysis-v1"


def _steps_to_jsonable(steps: Tuple[WitnessStep, ...]) -> list:
    return [[s.label, s.time, s.time_max] for s in steps]


def _steps_from_jsonable(doc) -> Tuple[WitnessStep, ...]:
    return tuple(
        WitnessStep(label=label, time=time, time_max=time_max)
        for label, time, time_max in doc
    )


def reach_analysis_to_jsonable(analysis: ReachAnalysis) -> dict:
    """A stable JSON form of a :class:`ReachAnalysis` (see docs/caching.md).

    Covers every field — the analysis already holds only strings, numbers,
    and ``None`` — so the round trip through
    :func:`reach_analysis_from_jsonable` reconstructs an object that
    compares equal to the original.
    """
    return {
        "format": REACH_ANALYSIS_FORMAT,
        "digest": analysis.digest,
        "rules": list(analysis.rules),
        "budget": {
            "max_states": analysis.budget.max_states,
            "time_limit": analysis.budget.time_limit,
        },
        "states_explored": analysis.states_explored,
        "transitions_fired": analysis.transitions_fired,
        "elapsed_seconds": analysis.elapsed_seconds,
        "truncated": analysis.truncated,
        "truncation_reason": analysis.truncation_reason,
        "skipped": analysis.skipped,
        "dead": [
            {
                "node": d.node, "cell": d.cell,
                "transition_id": d.transition_id,
                "source_state": d.source_state,
                "trigger": d.trigger, "label": d.label,
            }
            for d in analysis.dead
        ],
        "races": [
            {
                "node": r.node, "cell": r.cell, "state": r.state,
                "port_a": r.port_a, "port_b": r.port_b,
                "priority": r.priority,
                "outcome_a": r.outcome_a, "outcome_b": r.outcome_b,
                "window": [r.window[0], r.window[1]],
                "confidence": r.confidence, "replay": r.replay,
            }
            for r in analysis.races
        ],
        "timing": [
            {
                "node": t.node, "cell": t.cell,
                "error_location": t.error_location,
                "kind": t.kind, "symbol": t.symbol, "time": t.time,
                "witness": {
                    "inputs": [
                        [label, list(times)]
                        for label, times in t.witness.inputs
                    ],
                    "steps": _steps_to_jsonable(t.witness.steps),
                },
                "confidence": t.confidence, "replay": t.replay,
                "provenance": list(t.provenance),
            }
            for t in analysis.timing
        ],
        "stuck": [
            {
                "anchor": s.anchor,
                "pending": list(s.pending),
                "steps": _steps_to_jsonable(s.steps),
            }
            for s in analysis.stuck
        ],
    }


def reach_analysis_from_jsonable(doc: dict) -> ReachAnalysis:
    """Rebuild a :class:`ReachAnalysis` from its JSON form.

    Strict: a document of any other shape (or format tag) raises
    :class:`PylseError`, which the tiered cache treats as corruption —
    the entry is quarantined and the analysis recomputed.
    """
    try:
        if doc.get("format") != REACH_ANALYSIS_FORMAT:
            raise ValueError(
                f"unsupported reach-analysis format {doc.get('format')!r}"
            )
        return ReachAnalysis(
            digest=doc["digest"],
            rules=tuple(doc["rules"]),
            budget=ReachBudget(
                max_states=doc["budget"]["max_states"],
                time_limit=doc["budget"]["time_limit"],
            ),
            states_explored=doc["states_explored"],
            transitions_fired=doc["transitions_fired"],
            elapsed_seconds=doc["elapsed_seconds"],
            truncated=doc["truncated"],
            truncation_reason=doc["truncation_reason"],
            skipped=doc["skipped"],
            dead=tuple(DeadTransition(**d) for d in doc["dead"]),
            races=tuple(
                RaceFinding(
                    **{**r, "window": (r["window"][0], r["window"][1])}
                )
                for r in doc["races"]
            ),
            timing=tuple(
                TimingWitness(
                    node=t["node"], cell=t["cell"],
                    error_location=t["error_location"],
                    kind=t["kind"], symbol=t["symbol"], time=t["time"],
                    witness=Witness(
                        inputs=tuple(
                            (label, tuple(times))
                            for label, times in t["witness"]["inputs"]
                        ),
                        steps=_steps_from_jsonable(t["witness"]["steps"]),
                    ),
                    confidence=t["confidence"], replay=t["replay"],
                    provenance=tuple(t["provenance"]),
                )
                for t in doc["timing"]
            ),
            stuck=tuple(
                StuckState(
                    anchor=s["anchor"],
                    pending=tuple(s["pending"]),
                    steps=_steps_from_jsonable(s["steps"]),
                )
                for s in doc["stuck"]
            ),
        )
    except (AttributeError, KeyError, TypeError, ValueError) as err:
        raise PylseError(
            f"malformed reach-analysis document: {err}"
        ) from None


# ----------------------------------------------------------------------
# The incremental cache (same layering as repro.serve's result store).
# ----------------------------------------------------------------------
DEFAULT_REACH_CACHE_SIZE = 64

#: One in-memory tier per process, shared by every store below: a
#: same-process warm re-lint is a dict hit whether or not a disk tier is
#: attached, and promoting a disk hit warms it for the next call.
_reach_memory = LRUCache(DEFAULT_REACH_CACHE_SIZE)

#: The memory-only store (no ``cache_dir``).
_reach_store = TieredCache(_reach_memory)

#: ``cache_dir`` -> store with that persistent tier attached. A memo so
#: repeated lints against one directory share the disk counters (and the
#: DiskCache object) instead of rebuilding them per call.
_disk_stores: Dict[str, TieredCache] = {}


def _reach_store_for(cache_dir) -> TieredCache:
    if cache_dir is None:
        return _reach_store
    path = str(cache_dir)
    store = _disk_stores.get(path)
    if store is None:
        store = _disk_stores[path] = TieredCache(
            _reach_memory,
            DiskCache(cache_dir, LINT_NAMESPACE),
            encode=reach_analysis_to_jsonable,
            decode=reach_analysis_from_jsonable,
        )
    return store


def reach_cache_stats() -> Dict[str, int]:
    """Hits/misses/size of the process-wide reachability-analysis cache."""
    return _reach_memory.stats()


def clear_reach_cache() -> None:
    """Drop every in-memory analysis (tests and benchmarks use this).

    The persistent tier is left alone — clear it with ``python -m repro
    cache clear --cache-dir DIR --namespace lint``.
    """
    _reach_memory.clear()
    _disk_stores.clear()


def _normalize_rules(rules: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if rules is None:
        return REACH_RULES
    wanted = tuple(sorted(set(rules) & set(REACH_RULES)))
    return wanted


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
def analyze_reach(
    circuit: Circuit,
    budget: Optional[ReachBudget] = None,
    rules: Optional[Sequence[str]] = None,
    tolerance: float = 0.0,
    use_cache: bool = True,
    cache_dir=None,
) -> Tuple[ReachAnalysis, bool]:
    """Run (or serve from cache) the PL4xx analysis for one circuit.

    Returns ``(analysis, cached)`` where ``cached`` says whether the
    result came from the incremental cache. ``rules`` selects the PL4xx
    subset to compute — a deselected PL402 skips race collection and a
    deselected PL403 skips witness replay, so the subset is part of the
    cache key. With ``cache_dir`` set, finished analyses also persist to
    the ``lint`` namespace of that store (:mod:`repro.cache.disk`), so a
    warm re-lint of an unchanged design is a hit even in a fresh process.
    """
    budget = budget if budget is not None else ReachBudget()
    rules = _normalize_rules(rules)
    compiled = compile_circuit(circuit, validate=False)
    key = lint_cache_key(
        compiled.structural_hash,
        rules=rules,
        tolerance=tolerance,
        max_states=budget.max_states,
        time_limit=budget.time_limit,
    )
    store = _reach_store_for(cache_dir)
    if use_cache:
        hit = store.get(key)
        if hit is not MISSING:
            return hit, True  # type: ignore[return-value]
    analysis = _compute_analysis(circuit, compiled, budget, rules)
    if use_cache:
        store.put(key, analysis)
    return analysis, False


def _skipped(compiled: CompiledCircuit, budget: ReachBudget,
             rules: Tuple[str, ...], reason: str) -> ReachAnalysis:
    return ReachAnalysis(
        digest=compiled.structural_hash, rules=rules, budget=budget,
        states_explored=0, transitions_fired=0, elapsed_seconds=0.0,
        truncated=False, truncation_reason=None, skipped=reason,
        dead=(), races=(), timing=(), stuck=(),
    )


def _compute_analysis(
    circuit: Circuit,
    compiled: CompiledCircuit,
    budget: ReachBudget,
    rules: Tuple[str, ...],
) -> ReachAnalysis:
    if not rules:
        return _skipped(compiled, budget, rules, "no PL4xx rule selected")
    if not compiled.cells():
        return _skipped(compiled, budget, rules, "no cells to analyze")
    try:
        translation = translate_circuit(circuit)
    except PylseError as err:
        # Functional holes have no transition system — the analysis covers
        # the Transitional subset, exactly like `repro verify`.
        return _skipped(compiled, budget, rules, str(err))

    queries = []
    if "PL403" in rules:
        queries.append(no_error_query(translation))
    if "PL404" in rules:
        queries.append(deadlock_query())
    checker = ModelChecker(
        translation.network,
        max_states=budget.max_states,
        time_limit=budget.time_limit,
    )
    result = checker.run(queries, collect_races="PL402" in rules)

    inputs = _input_schedule(compiled)
    dead = (
        _dead_transitions(compiled, result)
        if "PL401" in rules and result.completed else ()
    )
    timing = (
        _timing_witnesses(circuit, compiled, translation, result, inputs)
        if "PL403" in rules else ()
    )
    races = (
        _race_findings(circuit, compiled, result)
        if "PL402" in rules else ()
    )
    stuck = (
        _stuck_states(translation, result)
        if "PL404" in rules else ()
    )
    return ReachAnalysis(
        digest=compiled.structural_hash,
        rules=rules,
        budget=budget,
        states_explored=result.states_explored,
        transitions_fired=result.transitions_fired,
        elapsed_seconds=result.elapsed_seconds,
        truncated=result.truncated,
        truncation_reason=result.truncation_reason,
        skipped=None,
        dead=tuple(dead),
        races=tuple(races),
        timing=tuple(timing),
        stuck=tuple(stuck),
    )


def _input_schedule(compiled: CompiledCircuit):
    """(label, times) pairs for every input generator, elaboration order."""
    pairs = []
    for node in compiled.input_nodes():
        wire = node.output_wires["out"]
        pairs.append((wire.observed_as, tuple(node.element.times)))
    return tuple(pairs)


def _witness_steps(violation) -> Tuple[WitnessStep, ...]:
    return tuple(
        WitnessStep(
            label=label,
            time=lo / SCALE,
            time_max=None if hi is None else hi / SCALE,
        )
        for label, lo, hi in violation.steps
    )


# ----------------------------------------------------------------------
# PL401: transitions dead in circuit context
# ----------------------------------------------------------------------
def _dead_transitions(compiled: CompiledCircuit, result) -> List[DeadTransition]:
    fired = result.coverage.fired_edges if result.coverage else frozenset()
    dead: List[DeadTransition] = []
    for node in compiled.cells():
        element = node.element
        if not isinstance(element, Transitional):
            continue
        spec = machine_spec(element)
        machine_reachable = reachable_states(spec)
        for t in element.machine.transitions:
            if t.source not in machine_reachable:
                continue  # dead at the machine level already: PL102's story
            entry = (node.name, t.source, f"q0_{t.id}")
            if entry not in fired:
                dead.append(DeadTransition(
                    node=node.name,
                    cell=element.name,
                    transition_id=t.id,
                    source_state=t.source,
                    trigger=t.trigger,
                    label=t.label,
                ))
    return dead


# ----------------------------------------------------------------------
# PL403: reachable timing violations with witnesses
# ----------------------------------------------------------------------
_WIRE_RE = re.compile(r"output wire '([^']+)'")


def _node_from_error(compiled: CompiledCircuit,
                     err: BaseException) -> Optional[str]:
    """The node a wrapped SimulationError points at, via its output wire."""
    match = _WIRE_RE.search(str(err))
    if match is None:
        return None
    wid = compiled.wire_index.get(match.group(1))
    if wid is None:
        return None
    node_id, _ = compiled.wire_source[wid]
    return compiled.nodes[node_id].name


def _replay_once(circuit: Circuit, compiled: CompiledCircuit):
    """One observed replay of the circuit's own schedule.

    Returns ``(failing_node, error)`` — both ``None`` when the run
    completes cleanly. The observer records provenance so a raised
    violation carries the causal chain of the offending pulse group.
    """
    sim = Simulation(circuit)
    observer = Observer()
    try:
        try:
            sim.simulate(observer=observer)
        finally:
            # Leave no per-run element state behind: lint must not change
            # what a later simulate() of the same circuit observes.
            sim.reset()
    except SimulationError as err:
        return _node_from_error(compiled, err), err
    return None, None


def _error_edge_kind(main_ta, location: str, node_name: str) -> str:
    """'hold' when the edge into ``location`` guards the handler clock."""
    hold_clock = f"c_{node_name}_h"
    for edge in main_ta.edges:
        if edge.target != location:
            continue
        if any(c.clock == hold_clock for c in edge.guard):
            return "hold"
        return "setup"
    return "setup"


def _parse_error_location(cell: str, location: str) -> Optional[str]:
    """The input symbol out of ``<CELL>_err_<sym>_<n>``."""
    prefix = f"{cell}_err_"
    if not location.startswith(prefix):
        return None
    rest = location[len(prefix):]
    symbol, _, counter = rest.rpartition("_")
    if not symbol or not counter.isdigit():
        return None
    return symbol


def _timing_witnesses(
    circuit: Circuit,
    compiled: CompiledCircuit,
    translation,
    result,
    inputs,
) -> List[TimingWitness]:
    violations = result.violations_for("query2")
    if not violations:
        return []
    failing_node, replay_err = _replay_once(circuit, compiled)
    witnesses: List[TimingWitness] = []
    seen = set()
    for violation in violations:
        node_name = violation.automaton
        main_ta = translation.main_tas.get(node_name)
        if main_ta is None:
            continue
        node = compiled.nodes[compiled.node_index[node_name]]
        cell = node.element.name
        symbol = _parse_error_location(cell, violation.location)
        if symbol is None:
            continue
        kind = _error_edge_kind(main_ta, violation.location, node_name)
        key = (node_name, symbol, kind)
        if key in seen:
            continue  # BFS order: the first witness is the shortest
        seen.add(key)
        steps = _witness_steps(violation)
        when = steps[-1].time if steps else 0.0
        if failing_node == node_name:
            confidence = "confirmed"
            replay = (
                "witness replay reproduced the violation: "
                + str(replay_err).splitlines()[0]
            )
            chain = getattr(replay_err, "provenance", None)
            provenance = tuple(chain.splitlines()) if chain else ()
        else:
            confidence = "possible"
            if failing_node is not None:
                replay = (
                    f"witness replay raised first at {failing_node!r}, "
                    f"not here"
                )
            else:
                replay = (
                    "witness replay completed without a violation (the TA "
                    "model interleaves same-instant pulses the simulator "
                    "dispatches atomically)"
                )
            provenance = ()
        witnesses.append(TimingWitness(
            node=node_name,
            cell=cell,
            error_location=violation.location,
            kind=kind,
            symbol=symbol,
            time=when,
            witness=Witness(inputs=inputs, steps=steps),
            confidence=confidence,
            replay=replay,
            provenance=provenance,
        ))
    return witnesses


# ----------------------------------------------------------------------
# PL402: input-order races
# ----------------------------------------------------------------------
def _describe_outcome(first: str, second: str, outcome) -> str:
    state, fired = outcome
    fired_text = ", ".join(
        f"{out} x{count}" if count > 1 else out for out, count in fired
    ) or "nothing"
    return f"{first} then {second} -> state {state!r}, fires {fired_text}"


def _seed_sweep(circuit: Circuit) -> Tuple[str, str]:
    """Grade schedule-dependence by replaying under swept tie-break seeds."""
    outcomes = set()
    for seed in RACE_REPLAY_SEEDS:
        sim = Simulation(circuit)
        try:
            try:
                events = sim.simulate(seed=seed)
                outcomes.add(
                    ("events", tuple(sorted(
                        (label, tuple(times))
                        for label, times in events.items()
                    )))
                )
            finally:
                sim.reset()
        except SimulationError as err:
            outcomes.add(("error", type(err).__name__, str(err)))
    if len(outcomes) > 1:
        return "confirmed", (
            f"replay under {len(RACE_REPLAY_SEEDS)} tie-break seeds produced "
            f"{len(outcomes)} distinct outcomes"
        )
    return "possible", (
        f"replay under {len(RACE_REPLAY_SEEDS)} tie-break seeds was "
        "outcome-identical (the nominal schedule may never take the racing "
        "branch both ways)"
    )


def _race_findings(
    circuit: Circuit, compiled: CompiledCircuit, result
) -> List[RaceFinding]:
    if not result.races:
        return []
    chan_dest: Dict[str, Tuple[str, str]] = {}
    for wid, dest in enumerate(compiled.wire_dest):
        if dest is None:
            continue
        node_id, port = dest
        chan_dest[channel_name(compiled.wires[wid])] = (
            compiled.nodes[node_id].name, port
        )
    candidates = []
    for cand in result.races:
        dest_a = chan_dest.get(cand.channel_a)
        dest_b = chan_dest.get(cand.channel_b)
        if dest_a is None or dest_b is None:
            continue
        if dest_a[0] != cand.automaton or dest_b[0] != cand.automaton:
            continue
        node = compiled.nodes[compiled.node_index[cand.automaton]]
        element = node.element
        if not isinstance(element, Transitional):
            continue
        machine = element.machine
        if cand.location not in machine.states:
            continue  # mid-transition arrivals are PL403's hold-error story
        port_a, port_b = sorted((dest_a[1], dest_b[1]))
        spec = machine_spec(element)
        delta = _delta_map(spec)
        first = delta.get((cand.location, port_a))
        second = delta.get((cand.location, port_b))
        if (first is None or second is None
                or len(first) != 1 or len(second) != 1):
            continue
        if first[0].priority != second[0].priority:
            continue  # the Dispatch Relation orders them deterministically
        a = _outcome(delta, cand.location, port_a, port_b)
        b = _outcome(delta, cand.location, port_b, port_a)
        if a is None or b is None or a == b:
            continue
        candidates.append((cand, node, element, port_a, port_b,
                           first[0].priority, a, b))
    if not candidates:
        return []
    confidence, replay = _seed_sweep(circuit)
    findings = []
    for cand, node, element, port_a, port_b, priority, a, b in candidates:
        lo, hi = cand.window
        findings.append(RaceFinding(
            node=node.name,
            cell=element.name,
            state=cand.location,
            port_a=port_a,
            port_b=port_b,
            priority=priority,
            outcome_a=_describe_outcome(port_a, port_b, a),
            outcome_b=_describe_outcome(port_b, port_a, b),
            window=(lo / SCALE, None if hi is None else hi / SCALE),
            confidence=confidence,
            replay=replay,
        ))
    return findings


# ----------------------------------------------------------------------
# PL404: stuck states
# ----------------------------------------------------------------------
def _stuck_states(translation, result) -> List[StuckState]:
    network = translation.network
    error_locs = {
        ta.name: set(ta.error_locations) for ta in network.automata
    }
    roles = {ta.name: ta.role for ta in network.automata}
    initial = {ta.name: ta.initial for ta in network.automata}
    machine_states = {
        name: _cell_rest_states(translation, name)
        for name in translation.main_tas
    }
    input_final = {
        ta.name: ta.locations[-1]
        for ta in network.automata if ta.role == "input"
    }
    stuck: List[StuckState] = []
    seen = set()
    for violation in result.violations_for("no_deadlock"):
        locs = violation.locations
        if any(loc in error_locs.get(ta, ()) for ta, loc in locs):
            # The run ended in an error location: that is the PL403
            # finding, not a separate stuck state.
            continue
        pending: List[str] = []
        anchor: Optional[str] = None
        for ta, loc in locs:
            role = roles.get(ta)
            if role == "cell" and loc not in machine_states.get(ta, ()):
                pending.append(f"{ta} is mid-transition at {loc}")
                anchor = anchor or ta
            elif role == "firing" and loc != initial[ta]:
                pending.append(f"{ta} holds an undelivered pulse at {loc}")
            elif role == "input" and loc != input_final.get(ta, loc):
                pending.append(f"{ta} still has pulses to emit (at {loc})")
        if not pending:
            continue  # good deadlock: schedule exhausted, everything at rest
        key = tuple(pending)
        if key in seen:
            continue
        seen.add(key)
        stuck.append(StuckState(
            anchor=anchor,
            pending=tuple(pending),
            steps=_witness_steps(violation),
        ))
    return stuck


def _cell_rest_states(translation, node_name: str) -> set:
    """The machine-state locations of one cell's main TA.

    Figure 14 expands each machine state with q*/wait/error locations; the
    rest states are exactly the original machine's states, which the main
    TA records as the locations present before expansion — recovered here
    as the locations that are neither error locations nor q-chain/wait
    locations (``q<i>_<transition id>``).
    """
    ta = translation.main_tas[node_name]
    q_like = re.compile(r"^q\d+_\d+$")
    return {
        loc for loc in ta.locations
        if loc not in ta.error_locations and not q_like.match(loc)
    }


# ----------------------------------------------------------------------
# Findings emission (used by lint_circuit's emit closure)
# ----------------------------------------------------------------------
def reach_findings(analysis: ReachAnalysis, emit) -> None:
    """Materialize an analysis into findings via ``emit``.

    ``emit`` is ``lint_circuit``'s closure: ``emit(rule_id, message,
    path=..., data=..., severity=..., **location_fields)`` — selection and
    suppression are applied there, so cached analyses still honor the
    caller's ``--select``/``--ignore`` and waivers.
    """
    from .findings import Severity

    for d in analysis.dead:
        emit(
            "PL401",
            f"transition {d.transition_id} ({d.label}) of {d.node} "
            f"({d.cell}) never fires in this circuit: exhaustive "
            f"exploration ({analysis.states_explored} states) finds no "
            f"schedule that delivers {d.trigger!r} in state "
            f"{d.source_state!r}",
            node=d.node, state=d.source_state, transition_id=d.transition_id,
            data={"trigger": d.trigger, "cell": d.cell},
        )
    for r in analysis.races:
        lo, hi = r.window
        window = (
            f"[{lo:g}, {hi:g}]" if hi is not None else f"[{lo:g}, inf)"
        )
        emit(
            "PL402",
            f"pulses on {r.port_a!r} and {r.port_b!r} can reach {r.node} "
            f"({r.cell}) at the same instant (global time {window} ps) in "
            f"state {r.state!r} with equal priority {r.priority}, and "
            f"dispatch order changes the outcome: {r.outcome_a}; vs "
            f"{r.outcome_b} — {r.replay} ({r.confidence})",
            node=r.node, state=r.state, port=r.port_a,
            severity=(
                Severity.WARNING if r.confidence == "confirmed"
                else Severity.INFO
            ),
            data={
                "ports": [r.port_a, r.port_b],
                "window": [lo, hi],
                "outcomes": [r.outcome_a, r.outcome_b],
                "confidence": r.confidence,
            },
        )
    for t in analysis.timing:
        path = t.provenance if t.provenance else tuple(t.witness.render())
        emit(
            "PL403",
            f"{t.kind} violation at {t.node} ({t.cell}) is statically "
            f"reachable: a pulse on {t.symbol!r} at t={t.time:g} ps drives "
            f"the cell into error location {t.error_location!r} — "
            f"{t.replay} ({t.confidence})",
            node=t.node, port=t.symbol,
            severity=(
                Severity.ERROR if t.confidence == "confirmed"
                else Severity.WARNING
            ),
            path=path,
            data={
                "kind": t.kind,
                "error_location": t.error_location,
                "witness": t.witness.to_jsonable(),
                "confidence": t.confidence,
                "time": t.time,
            },
        )
    for s in analysis.stuck:
        emit(
            "PL404",
            "stuck state: " + "; ".join(s.pending) + " — no automaton can "
            "make progress, yet work is pending (not the 'good' deadlock "
            "of an exhausted schedule)",
            node=s.anchor,
            path=tuple(step.render() for step in s.steps),
            data={"pending": list(s.pending)},
        )
