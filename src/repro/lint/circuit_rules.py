"""Circuit-level lint: the ``lint_circuit`` / ``lint_machine`` entry points.

``lint_circuit`` runs three layers over a circuit:

1. **machine lint** — every distinct cell's PyLSE Machine goes through the
   PL1xx rules once, with the instantiating node names attached;
2. **structural lint** — single-driver/reader bookkeeping (PL204, PL202),
   combinational feedback loops (PL201), structural clock reachability
   (PL203), and Figure 11 path-balance skew (PL205);
3. **timing lint** — the interval abstract interpretation of
   :mod:`repro.lint.intervals`, classifying every (cell, constraint) pair
   as statically violated (PL301), possibly violated (PL302), or safe
   (PL303) with a quantified margin;
4. **reachability lint** (opt-in via ``reach=True``) — the zone-based model
   checker of :mod:`repro.mc` run exhaustively over the translated TA
   network, proving dead transitions (PL401), input-order races (PL402),
   reachable timing violations with replayed witnesses (PL403), and stuck
   states (PL404). See :mod:`repro.lint.reach_rules`; results come from an
   incremental cache keyed by the circuit's structural hash.

Suppression is layered: a cell class can carry ``lint_suppress`` (rule IDs
or prefixes the analyzer skips for that cell and its nodes), and callers
can pass ``suppressions={node_name_or_star: [patterns]}`` for per-node
waivers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

from ..core.analysis import balance_report, circuit_graph, clock_wires
from ..core.circuit import Circuit, working_circuit
from ..core.element import InGen
from ..core.errors import PylseError
from ..core.ir import compile_circuit
from ..core.transitional import Transitional
from .findings import Finding, Location, Severity
from .intervals import TimingCheck, propagate
from .machine_rules import MachineLike, machine_findings, machine_spec
from .reach_rules import REACH_RULES, ReachBudget, analyze_reach, reach_findings
from .report import LintReport
from .rules import is_selected, matches, rule

Patterns = Optional[Union[str, Sequence[str]]]


def _patterns(value: Patterns) -> Optional[Tuple[str, ...]]:
    """Normalize a ``--select``-style value: comma string or sequence."""
    if value is None:
        return None
    if isinstance(value, str):
        value = value.split(",")
    cleaned = tuple(p.strip() for p in value if p and p.strip())
    return cleaned


def lint_machine(
    obj: MachineLike,
    select: Patterns = None,
    ignore: Patterns = None,
) -> LintReport:
    """Statically analyze one machine (PylseMachine, Transitional class or
    instance); returns a :class:`LintReport` of PL1xx findings.

    The cell's own ``lint_suppress`` list is honored on top of ``ignore``.
    """
    spec = machine_spec(obj)
    ignore_pats = list(_patterns(ignore) or ())
    ignore_pats.extend(getattr(obj, "lint_suppress", ()) or ())
    findings = machine_findings(
        spec, select=_patterns(select), ignore=tuple(ignore_pats)
    )
    findings.sort(key=lambda f: (f.rule, f.location.qualified_name()))
    return LintReport(findings=tuple(findings))


def _is_stateless_fabric(element) -> bool:
    """True for elements that cannot hold a pulse back (1-state machines).

    A combinational cycle through only such elements re-circulates forever;
    Functional holes are treated as state-holding because their Python body
    may absorb pulses.
    """
    return (
        isinstance(element, Transitional)
        and len(element.machine.states) < 2
    )


def _worst_by_pair(checks: Iterable[TimingCheck]) -> List[TimingCheck]:
    """Keep the worst-margin check per (node, kind, port pair)."""
    worst: Dict[Tuple[str, str, str, str], TimingCheck] = {}
    for check in checks:
        key = (check.node, check.kind, check.first_port, check.second_port)
        kept = worst.get(key)
        if kept is None or check.margin < kept.margin:
            worst[key] = check
    return [worst[k] for k in sorted(worst)]


def lint_circuit(
    circuit: Optional[Circuit] = None,
    select: Patterns = None,
    ignore: Patterns = None,
    suppressions: Optional[Mapping[str, Sequence[str]]] = None,
    tolerance: float = 0.0,
    design: Optional[str] = None,
    reach: bool = False,
    reach_budget: Optional[ReachBudget] = None,
    reach_cache_dir=None,
) -> LintReport:
    """Run the full static analysis over a circuit.

    ``tolerance`` does double duty, as in :func:`balance_report`: it is the
    allowed path-balance skew (PL205) and the minimum acceptable timing
    margin — a statically-safe pair whose margin is below it is reported as
    PL302.

    ``reach=True`` additionally runs the PL4xx zone-based reachability
    layer within ``reach_budget`` (state/time caps with explicit
    ``truncated`` reporting); the underlying analysis is served from the
    incremental cache when the circuit's structural hash, rule subset,
    tolerance, and budget all match a previous run. ``reach_cache_dir``
    additionally persists finished analyses on disk (the ``lint``
    namespace of a :mod:`repro.cache` store), so the warm path survives
    process restarts.
    """
    circuit = circuit if circuit is not None else working_circuit()
    select = _patterns(select)
    ignore = _patterns(ignore) or ()
    suppressions = dict(suppressions or {})

    # Self-check: the O(1) wire-name index must agree with the circuit's
    # wire lists (rename/feedback-wire patterns are the historical risk).
    # An inconsistency is a core bug, not a design finding — fail loudly.
    index_problems = circuit.index_problems()
    if index_problems:
        raise PylseError(
            "circuit wire-name index is inconsistent with circuit.wires "
            "(core invariant violated): " + "; ".join(index_problems)
        )

    node_suppress: Dict[str, Tuple[str, ...]] = {}
    for node in circuit.cells():
        cell_level = tuple(getattr(node.element, "lint_suppress", ()) or ())
        node_level = tuple(suppressions.get(node.name, ()))
        node_suppress[node.name] = cell_level + node_level
    global_suppress = tuple(suppressions.get("*", ()))

    findings: List[Finding] = []

    def emit(rule_id: str, message: str, path: Tuple[str, ...] = (),
             data: Optional[Mapping[str, object]] = None,
             severity: Optional[Severity] = None,
             **location_fields) -> None:
        if not is_selected(rule_id, select, ignore):
            return
        if matches(rule_id, global_suppress):
            return
        node_name = location_fields.get("node")
        if node_name and matches(rule_id, node_suppress.get(node_name, ())):
            return
        findings.append(Finding(
            rule=rule_id,
            severity=severity if severity is not None else rule(rule_id).severity,
            message=message,
            location=Location(design=design, **location_fields),
            path=path,
            data=data,
        ))

    # ------------------------------------------------------------------
    # Layer 1: machine lint, once per distinct cell configuration.
    # ------------------------------------------------------------------
    groups: Dict[Tuple[str, str], Tuple[Transitional, List[str]]] = {}
    for node in circuit.cells():
        element = node.element
        if not isinstance(element, Transitional):
            continue
        overrides = getattr(element, "overrides", {}) or {}
        key = (element.name, repr(sorted(overrides.items(), key=repr)))
        if key in groups:
            groups[key][1].append(node.name)
        else:
            groups[key] = (element, [node.name])
    for (cell_name, _), (element, nodes) in sorted(groups.items()):
        cell_ignore = tuple(ignore) + tuple(
            getattr(element, "lint_suppress", ()) or ()
        )
        for finding in machine_findings(
            machine_spec(element), select=select, ignore=cell_ignore,
            design=design, nodes=nodes,
        ):
            if not matches(finding.rule, global_suppress):
                findings.append(finding)

    # ------------------------------------------------------------------
    # Layer 2: structural lint.
    # ------------------------------------------------------------------
    # PL204: consumed wires with no driver.
    for wire, (node, port) in sorted(
        circuit.dest_of.items(), key=lambda kv: (kv[1][0].name, kv[1][1])
    ):
        if wire not in circuit.source_of:
            emit("PL204",
                 f"wire {wire.name!r} feeds input {port!r} of {node.name} "
                 f"but has no driver",
                 node=node.name, port=port, wire=wire.name)

    # PL202: driven wires nobody consumes or observes.
    for wire in circuit.wires:
        if wire in circuit.dest_of or wire.is_user_named:
            continue
        src_node, src_port = circuit.source_of[wire]
        if isinstance(src_node.element, InGen):
            continue
        emit("PL202",
             f"output {src_port!r} of {src_node.name} drives wire "
             f"{wire.name!r} which is neither consumed nor observed; its "
             f"pulses are silently dropped",
             node=src_node.name, port=src_port, wire=wire.name)

    # PL201: cycles made only of stateless fabric. The compiled IR already
    # carries the cyclic SCCs with members sorted by node name — no private
    # node graph or {name: node} rebuild.
    compiled = compile_circuit(circuit, validate=False)
    has_cycles = not compiled.is_acyclic
    for component in compiled.cyclic_sccs:
        members = [compiled.nodes[i].name for i in component]
        if all(
            _is_stateless_fabric(compiled.nodes[i].element)
            for i in component
        ):
            emit("PL201",
                 f"feedback loop through stateless fabric only "
                 f"({', '.join(members)}): every pulse entering the loop "
                 f"re-circulates forever",
                 node=members[0],
                 data={"nodes": members})

    # PL203: clk ports no circuit input can reach.
    graph = circuit_graph(circuit)
    input_nodes = [
        n for n, d in graph.nodes(data=True) if d.get("kind") == "input"
    ]
    fed = set(input_nodes)
    for src in input_nodes:
        fed |= nx.descendants(graph, src)
    for u, v, data in sorted(graph.edges(data=True),
                             key=lambda e: (e[1], str(e[2].get("port")))):
        if data.get("port") == "clk" and u not in fed:
            emit("PL203",
                 f"clk port of {v} is driven by {u}, which no circuit "
                 f"input reaches: the gate will never read out",
                 node=v, port="clk")

    # PL205: imbalanced convergent data arrivals (Figure 11 arithmetic).
    if not has_cycles:
        for skew in balance_report(circuit, tolerance=tolerance):
            detail = ", ".join(
                f"{port} in [{lo:g}, {hi:g}]"
                for port, (lo, hi) in sorted(skew.arrivals.items())
            )
            emit("PL205",
                 f"data inputs of {skew.node} ({skew.cell}) arrive with "
                 f"{skew.skew:g} ps skew ({detail}); consider a JTL on the "
                 f"early path",
                 node=skew.node,
                 data={"skew": skew.skew})

    # ------------------------------------------------------------------
    # Layer 3: timing lint via interval abstract interpretation.
    # ------------------------------------------------------------------
    timing: Dict[str, object] = {}
    timing_skipped = has_cycles
    if not has_cycles and circuit.cells():
        analysis = propagate(circuit)
        violations = [c for c in analysis.checks if c.status == "violation"]
        possibles = [c for c in analysis.checks if c.status == "possible"]
        close = [
            c for c in analysis.checks
            if c.status == "safe" and c.sep_max >= 0
            and tolerance > 0 and c.margin < tolerance
        ]
        for check in _worst_by_pair(violations):
            emit("PL301",
                 f"every schedule violates the {check.kind} constraint: "
                 f"{check.describe()}",
                 path=(
                     check.first.path(f"{check.node}.{check.first_port}"),
                     check.second.path(f"{check.node}.{check.second_port}"),
                 ),
                 data={"margin": check.margin, "kind": check.kind},
                 node=check.node, port=check.second_port)
        for check in _worst_by_pair(possibles):
            emit("PL302",
                 f"some schedules violate the {check.kind} constraint: "
                 f"{check.describe()}",
                 path=(
                     check.first.path(f"{check.node}.{check.first_port}"),
                     check.second.path(f"{check.node}.{check.second_port}"),
                 ),
                 data={"margin": check.margin, "kind": check.kind},
                 node=check.node, port=check.second_port)
        for check in _worst_by_pair(close):
            emit("PL302",
                 f"{check.kind} constraint is met but the margin "
                 f"{check.margin:g} ps is below the required tolerance "
                 f"{tolerance:g} ps: {check.describe()}",
                 data={"margin": check.margin, "kind": check.kind},
                 node=check.node, port=check.second_port)
        margin = analysis.safe_margin()
        timing = {
            "checks": len(analysis.checks),
            "violations": len(violations),
            "possible": len(possibles),
            "safe_margin": margin,
        }
        if (analysis.checks and not violations and not possibles and not close
                and margin is not None):
            emit("PL303",
                 f"all {len(analysis.checks)} constraint pair(s) are "
                 f"statically safe; worst margin {margin:g} ps")

    # ------------------------------------------------------------------
    # Layer 4 (opt-in): reachability lint via zone-based model checking.
    # ------------------------------------------------------------------
    reach_summary: Dict[str, object] = {}
    reach_skipped: Optional[str] = None
    if reach:
        enabled = tuple(
            r for r in REACH_RULES if is_selected(r, select, ignore)
        )
        if not enabled:
            reach_skipped = "all PL4xx rules deselected"
        else:
            analysis, cached = analyze_reach(
                circuit, budget=reach_budget, rules=enabled,
                tolerance=tolerance, cache_dir=reach_cache_dir,
            )
            if analysis.skipped is not None:
                reach_skipped = analysis.skipped
            else:
                reach_findings(analysis, emit)
                reach_summary = dict(analysis.summary(), cached=cached)

    # ------------------------------------------------------------------
    # Structural clock summary (replaces the old name-prefix heuristic).
    # ------------------------------------------------------------------
    clocks: Dict[str, Dict[str, object]] = {}
    try:
        for label, sinks in clock_wires(circuit).items():
            src = f"in:{label}"
            lengths = nx.single_source_dijkstra_path_length(
                graph, src, weight="delay"
            )
            arrivals = [
                lengths[u] + data["delay"]
                for u, v, data in graph.edges(data=True)
                if data.get("port") == "clk" and u in lengths
            ]
            if arrivals:
                clocks[label] = {
                    "sinks": len(sinks),
                    "skew": (min(arrivals), max(arrivals)),
                }
    except PylseError:
        pass

    findings.sort(key=lambda f: (-int(f.severity), f.rule,
                                 f.location.qualified_name()))
    return LintReport(
        findings=tuple(findings),
        design=design,
        timing=timing,
        timing_skipped=timing_skipped,
        clocks=clocks,
        structural_hash=compiled.structural_hash,
        reach=reach_summary,
        reach_skipped=reach_skipped,
    )
