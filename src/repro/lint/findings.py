"""Finding records for the static analyzer.

A :class:`Finding` is one diagnostic produced by a lint rule: the rule ID,
its severity, a human-readable message, and a structured
:class:`Location` naming exactly which machine / node / port / wire the
diagnostic is about. Structured locations are what let the SARIF emitter
produce navigable logical locations and what per-node suppression keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean "at least as bad"."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"Unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    @property
    def label(self) -> str:
        """Lowercase name used in reports (``error``/``warning``/``info``)."""
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {"error": "error", "warning": "warning", "info": "note"}[self.label]


@dataclass(frozen=True)
class Location:
    """Where a finding points, in increasing specificity.

    ``design`` is the registry design name (when linting through the CLI),
    ``machine`` the cell type, ``node`` the placed instance, and the
    remaining fields narrow down to a state, transition, port, or wire.
    Unused fields stay ``None``.
    """

    design: Optional[str] = None
    machine: Optional[str] = None
    node: Optional[str] = None
    state: Optional[str] = None
    transition_id: Optional[int] = None
    port: Optional[str] = None
    wire: Optional[str] = None

    def qualified_name(self) -> str:
        """A stable dotted path, e.g. ``node:xor0.clk`` or ``machine:AND/state:a_arr``."""
        parts = []
        if self.machine and not self.node:
            parts.append(f"machine:{self.machine}")
        if self.node:
            parts.append(f"node:{self.node}")
        if self.state:
            parts.append(f"state:{self.state}")
        if self.transition_id is not None:
            parts.append(f"transition:{self.transition_id}")
        if self.port:
            parts.append(f"port:{self.port}")
        if self.wire:
            parts.append(f"wire:{self.wire}")
        if not parts:
            parts.append("circuit")
        return "/".join(parts)

    @property
    def kind(self) -> str:
        """The most specific element kind this location names."""
        for attr, kind in (
            ("wire", "wire"),
            ("port", "port"),
            ("transition_id", "transition"),
            ("state", "state"),
            ("node", "node"),
            ("machine", "machine"),
        ):
            if getattr(self, attr) is not None:
                return kind
        return "circuit"

    def to_jsonable(self) -> dict:
        return {
            k: v
            for k, v in (
                ("design", self.design),
                ("machine", self.machine),
                ("node", self.node),
                ("state", self.state),
                ("transition", self.transition_id),
                ("port", self.port),
                ("wire", self.wire),
            )
            if v is not None
        }


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule, severity, message, structured location.

    ``path`` carries the offending pulse path(s) for the timing rules
    (PL3xx) — pre-rendered lines like
    ``in:clk@50 -> jtl0 +[3, 3] -> xor0.clk in [53, 53]`` mirroring what
    ``SimulationError.provenance`` reports dynamically.
    """

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    path: Tuple[str, ...] = ()
    data: Optional[Mapping[str, object]] = None

    def render(self) -> str:
        lines = [
            f"{self.rule} {self.severity.label} {self.location.qualified_name()}: "
            f"{self.message}"
        ]
        lines.extend(f"    {hop}" for hop in self.path)
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        payload: dict = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "location": self.location.to_jsonable(),
        }
        if self.path:
            payload["path"] = list(self.path)
        if self.data:
            payload["data"] = {k: v for k, v in self.data.items()}
        return payload
