"""Per-design parallel lint execution over the registry.

``repro lint --all --reach`` runs the PL4xx zone exploration once per
design; the explorations are independent, so they shard across a process
pool exactly like the Monte-Carlo seed sweeps of
:mod:`repro.core.parallel` (whose ``resolve_workers`` convention —
``0``/``None`` means one per CPU — this module reuses). Each worker
re-elaborates its design from the registry by name (the
:class:`~repro.exp.registry.RegistryFactory` pattern: names pickle,
circuits need not) and ships the finished :class:`LintReport` back; the
parent preserves registry order, so parallel output is byte-identical to
serial output.

A worker crash degrades loudly to the in-process serial path — the same
"never worse than sequential" contract the Monte-Carlo engine keeps.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from ..core.parallel import resolve_workers
from .circuit_rules import lint_circuit
from .report import LintReport

#: Below this many designs a pool cannot amortize interpreter spawn.
MIN_DESIGNS_PARALLEL = 4


def _lint_design_worker(name: str, kwargs: Dict[str, object]) -> LintReport:
    """Lint one registry design by name (module-level: must pickle)."""
    from ..exp.registry import build_in_fresh_circuit, registry

    for entry in registry():
        if entry.name == name:
            circuit = build_in_fresh_circuit(entry)
            return lint_circuit(circuit, design=name, **kwargs)
    raise ValueError(f"Unknown registry design {name!r}")


def lint_designs(
    names: Sequence[str],
    workers: Optional[int] = 1,
    **lint_kwargs,
) -> List[LintReport]:
    """Lint the named registry designs, optionally across a process pool.

    ``workers=1`` (the default) is the in-process reference path;
    ``workers=0``/``None`` means one worker per CPU. ``lint_kwargs`` are
    forwarded to :func:`lint_circuit` (``select``, ``ignore``,
    ``tolerance``, ``reach``, ``reach_budget``, ...). Reports come back in
    the order of ``names`` regardless of backend.

    Note the process-pool trade-off: each worker process has its own
    reach cache, so cross-run cache warmth only accrues in-process
    (``workers=1``) or within one pool's lifetime.
    """
    names = list(names)
    count = resolve_workers(workers)
    if count <= 1 or len(names) < MIN_DESIGNS_PARALLEL:
        return [_lint_design_worker(name, lint_kwargs) for name in names]
    try:
        with ProcessPoolExecutor(max_workers=min(count, len(names))) as pool:
            futures = [
                pool.submit(_lint_design_worker, name, lint_kwargs)
                for name in names
            ]
            return [f.result() for f in futures]  # submission order kept
    except (BrokenProcessPool, OSError) as err:
        warnings.warn(
            f"parallel lint worker failure ({err!r}); falling back to the "
            "in-process serial path",
            RuntimeWarning,
            stacklevel=2,
        )
        return [_lint_design_worker(name, lint_kwargs) for name in names]
