"""Structural-hash manifest for every registry design.

Compiles each of the 22 evaluated designs (the 16 basic cells and the six
paper designs of Table 3) through :func:`repro.core.ir.compile_circuit`
and records its structural hash in ``HASH_MANIFEST.json`` at the
repository root. The hash is invariant under process, anonymous-wire
numbering, and insertion order of independent nodes, but changes whenever
a delay, transition, connection, input schedule, or user-visible label
changes — so a manifest diff is a precise "the netlist semantics changed"
signal in review, and an *unintended* diff catches accidental changes to
cell definitions or the hash recipe itself.

Usage, from the repository root::

    PYTHONPATH=src python tools/hash_manifest.py            # check
    PYTHONPATH=src python tools/hash_manifest.py --update   # regenerate

Check mode exits 1 on any mismatch, listing each design whose hash moved
(CI runs this on every push). The manifest also pins the hash recipe
version; bumping ``repro.core.ir._HASH_VERSION`` without regenerating the
manifest fails loudly rather than comparing incompatible digests.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

MANIFEST_FILE = ROOT / "HASH_MANIFEST.json"


def current_hashes() -> dict:
    from repro.core.ir import structural_hash
    from repro.exp.registry import build_in_fresh_circuit, registry

    return {
        entry.name: structural_hash(build_in_fresh_circuit(entry))
        for entry in registry()
    }


def build_manifest() -> dict:
    from repro.core import ir

    return {
        "generated_by": "tools/hash_manifest.py",
        "hash_version": ir._HASH_VERSION,
        "hashes": current_hashes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="write the freshly computed manifest instead of checking",
    )
    args = parser.parse_args(argv)

    fresh = build_manifest()
    if args.update:
        MANIFEST_FILE.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"wrote {MANIFEST_FILE} ({len(fresh['hashes'])} designs)")
        return 0

    if not MANIFEST_FILE.exists():
        print(
            f"{MANIFEST_FILE} missing; run with --update to create it",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(MANIFEST_FILE.read_text())

    failures = []
    if committed.get("hash_version") != fresh["hash_version"]:
        failures.append(
            f"hash recipe version changed: manifest has "
            f"{committed.get('hash_version')!r}, code has "
            f"{fresh['hash_version']!r}"
        )
    else:
        old = committed.get("hashes", {})
        for name, digest in fresh["hashes"].items():
            if name not in old:
                failures.append(f"{name}: not in committed manifest")
            elif old[name] != digest:
                failures.append(
                    f"{name}: hash changed ({old[name][:12]} -> {digest[:12]})"
                )
        for name in old:
            if name not in fresh["hashes"]:
                failures.append(f"{name}: in manifest but not in registry")

    if failures:
        print("structural-hash manifest check FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "intentional netlist changes: regenerate with "
            "`PYTHONPATH=src python tools/hash_manifest.py --update` "
            "and commit the diff",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(fresh['hashes'])} design hashes match the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
