"""Closed-loop async load generator for the yield service.

Drives a running ``python -m repro serve`` instance with N concurrent
clients issuing ``POST /yield`` requests over keep-alive connections, with
a zipf-ish skew over the design registry (a small hot set dominates, the
tail stays cold — the traffic shape a shared analysis service actually
sees). Reports throughput, latency percentiles, and the cache hit rate
measured from the server's own ``/stats`` deltas.

Usage, from the repository root (server already listening)::

    PYTHONPATH=src python -m repro serve --port 8080 &
    PYTHONPATH=src python tools/loadtest.py --port 8080 \
        --clients 8 --requests 200
    PYTHONPATH=src python tools/loadtest.py --port 8080 --mode cold
    PYTHONPATH=src python tools/loadtest.py --port 8080 \
        --requests 50 --assert-hit-rate 0.5 --json out.json

Modes:

* ``mixed`` (default) — zipf-skewed design choice, fixed sigma: the hot
  designs repeat identical cache keys and hit, the cold tail misses;
* ``hot``  — one design, one sigma: everything after the first request
  is a cache hit (the warm ceiling);
* ``cold`` — a unique sigma per request: every request misses (the
  all-miss floor).

The generator is *closed-loop*: each client waits for its response before
sending the next request, so offered load adapts to service latency
instead of overrunning it.

``--restart-warm CACHE_DIR`` runs the persistent-cache scenario instead
of targeting an already-running server: the tool spawns its own
``python -m repro serve --cache-dir CACHE_DIR``, runs a *fill* phase,
kills the server, starts a fresh one on the same store, and runs a
*measure* phase — whose hit rate shows the disk tier surviving the
restart (``--assert-hit-rate`` applies to the measure phase)::

    PYTHONPATH=src python tools/loadtest.py --port 8199 \
        --restart-warm /tmp/repro-cache --mode hot \
        --requests 30 --clients 4 --assert-hit-rate 0.9
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


class _Counter:
    """Remaining-request counter shared by the client coroutines.

    Single-threaded under the event loop, so plain attributes suffice.
    """

    def __init__(self, total: int):
        self.remaining = total

    def take(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    host: str,
    body: Optional[bytes] = None,
) -> Tuple[int, bytes]:
    """One HTTP/1.1 request on a kept-alive connection."""
    payload = body or b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode("ascii")
    writer.write(head + payload)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    parts = status_line.split(None, 2)
    status = int(parts[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    data = await reader.readexactly(length) if length else b""
    return status, data


async def _fetch_stats(host: str, port: int) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, body = await _http_request(
            reader, writer, "GET", "/stats", host
        )
        if status != 200:
            raise ConnectionError(f"/stats returned HTTP {status}")
        return json.loads(body)
    finally:
        writer.close()


async def _wait_ready(host: str, port: int, timeout_s: float) -> None:
    deadline = time.monotonic() + timeout_s
    last_err: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                status, _ = await _http_request(
                    reader, writer, "GET", "/healthz", host
                )
            finally:
                writer.close()
            if status == 200:
                return
        except (OSError, ConnectionError, ValueError) as err:
            last_err = err
        await asyncio.sleep(0.2)
    raise SystemExit(
        f"server at {host}:{port} not ready within {timeout_s:.0f}s "
        f"({last_err})"
    )


def _design_weights(designs: List[str], zipf_s: float) -> List[float]:
    """Zipf-ish popularity: weight of the rank-k design is (k+1)^-s."""
    return [(rank + 1) ** -zipf_s for rank in range(len(designs))]


def _registry_designs() -> List[str]:
    """All registry design names, composite designs first (hotter)."""
    from repro.exp.registry import registry

    entries = sorted(registry(), key=lambda e: e.is_basic_cell)
    return [entry.name for entry in entries]


async def _client_loop(
    index: int,
    args,
    counter: _Counter,
    designs: List[str],
    weights: List[float],
    latencies: List[float],
    errors: List[str],
    cold_sigmas,
) -> None:
    rng = random.Random(args.seed * 7919 + index)
    reader, writer = await asyncio.open_connection(args.host, args.port)
    try:
        while counter.take():
            if args.mode == "hot":
                design, sigma = designs[0], args.sigma
            elif args.mode == "cold":
                design = rng.choices(designs, weights)[0]
                sigma = next(cold_sigmas)
            else:
                design = rng.choices(designs, weights)[0]
                sigma = args.sigma
            body = json.dumps({
                "design": design,
                "sigma": sigma,
                "n_seeds": args.n_seeds,
                "seed0": args.seed0,
            }).encode("utf-8")
            started = time.perf_counter()
            status, data = await _http_request(
                reader, writer, "POST", "/yield", args.host, body
            )
            latencies.append(time.perf_counter() - started)
            if status != 200:
                errors.append(f"HTTP {status}: {data[:120]!r}")
    finally:
        writer.close()


def _endpoint_delta(before: dict, after: dict, field: str) -> int:
    def value(stats: dict) -> int:
        return (
            stats.get("endpoints", {}).get("/yield", {}).get(field, 0)
        )

    return value(after) - value(before)


async def run_loadtest(args) -> dict:
    await _wait_ready(args.host, args.port, args.wait_s)
    designs = (
        [name.strip() for name in args.designs.split(",") if name.strip()]
        if args.designs
        else _registry_designs()
    )
    if args.hot_set:
        designs = designs[: args.hot_set]
    weights = _design_weights(designs, args.zipf)

    def _cold_sigma_stream():
        # Unique-but-equivalent sigmas: every request is a genuine cache
        # miss of essentially identical cost. One shared stream — clients
        # must never draw the same sigma or "cold" requests would hit.
        step = 0
        while True:
            step += 1
            yield args.sigma + step * 1e-9

    cold_sigmas = _cold_sigma_stream()
    counter = _Counter(args.requests)
    latencies: List[float] = []
    errors: List[str] = []
    before = await _fetch_stats(args.host, args.port)
    started = time.perf_counter()
    await asyncio.gather(*(
        _client_loop(
            index, args, counter, designs, weights, latencies, errors,
            cold_sigmas,
        )
        for index in range(args.clients)
    ))
    wall_s = time.perf_counter() - started
    after = await _fetch_stats(args.host, args.port)

    ordered = sorted(latencies)
    hits = _endpoint_delta(before, after, "hits")
    misses = _endpoint_delta(before, after, "misses")
    answered = hits + misses
    report: Dict[str, object] = {
        "endpoint": "/yield",
        "mode": args.mode,
        "requests": len(latencies),
        "clients": args.clients,
        "designs": len(designs),
        "zipf": args.zipf,
        "n_seeds": args.n_seeds,
        "sigma": args.sigma,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else None,
        "latency_ms": {
            "mean": round(sum(ordered) / len(ordered) * 1e3, 3) if ordered else None,
            "p50": round(_percentile(ordered, 0.50) * 1e3, 3) if ordered else None,
            "p95": round(_percentile(ordered, 0.95) * 1e3, 3) if ordered else None,
            "p99": round(_percentile(ordered, 0.99) * 1e3, 3) if ordered else None,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / answered, 4) if answered else None,
            "computations": (
                after.get("computations", 0) - before.get("computations", 0)
            ),
            "coalesced": (
                after.get("coalesced", 0) - before.get("coalesced", 0)
            ),
        },
        "errors": len(errors),
        "error_samples": errors[:5],
    }
    return report


def render(report: dict) -> str:
    lat = report["latency_ms"]
    cache = report["cache"]
    rate = cache["hit_rate"]
    lines = [
        f"loadtest: POST /yield x {report['requests']} | "
        f"{report['clients']} clients | mode={report['mode']} "
        f"zipf={report['zipf']} over {report['designs']} designs",
        f"  wall time: {report['wall_s']:.2f} s   "
        f"throughput: {report['throughput_rps']} req/s",
        f"  latency ms: mean {lat['mean']} | p50 {lat['p50']} | "
        f"p95 {lat['p95']} | p99 {lat['p99']}",
        f"  cache: {cache['hits']} hits / {cache['misses']} misses"
        + (f" ({rate:.1%} hit rate)" if rate is not None else "")
        + f" | computations +{cache['computations']}"
        + f" | coalesced +{cache['coalesced']}",
        f"  errors: {report['errors']}",
    ]
    for sample in report["error_samples"]:
        lines.append(f"    {sample}")
    return "\n".join(lines)


def _spawn_server(args) -> subprocess.Popen:
    """Launch `python -m repro serve` against the restart-warm store."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", args.host,
        "--port", str(args.port),
        "--workers", str(args.server_workers),
        "--cache-dir", args.restart_warm,
    ]
    # Inherit the caller's environment: PYTHONPATH=src from the repo root
    # is exactly what the child needs to find the package.
    return subprocess.Popen(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        env=dict(os.environ),
    )


def _stop_server(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def run_restart_warm(args) -> int:
    """Fill a persistent store, restart the server, measure warm traffic.

    Two phases against two *distinct server processes* sharing one
    ``--cache-dir``: every measure-phase hit is proof the result came off
    disk — the second process starts with empty in-memory tiers.
    """
    if args.port == 0:
        print("--restart-warm needs a fixed --port (not 0): the spawned "
              "server must be reachable at a known address",
              file=sys.stderr)
        return 2
    proc = _spawn_server(args)
    try:
        fill = asyncio.run(run_loadtest(args))
    finally:
        _stop_server(proc)
    print("fill phase (cold server, cold store):")
    print(render(fill))

    proc = _spawn_server(args)
    try:
        measure = asyncio.run(run_loadtest(args))
    finally:
        _stop_server(proc)
    print("\nmeasure phase (restarted server, warm store):")
    print(render(measure))

    report = {
        "scenario": "restart-warm",
        "cache_dir": args.restart_warm,
        "fill": fill,
        "measure": measure,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    if fill["errors"] or measure["errors"]:
        return 1
    rate = measure["cache"]["hit_rate"]
    if args.assert_hit_rate is not None:
        if rate is None or rate < args.assert_hit_rate:
            print(
                f"FAIL: measure-phase hit rate {rate} below required "
                f"{args.assert_hit_rate} — the store did not survive the "
                f"restart",
                file=sys.stderr,
            )
            return 1
        print(f"restart-warm assertion ok: {rate:.1%} >= "
              f"{args.assert_hit_rate:.1%} across a server restart")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop clients (default 8)")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests across all clients "
                             "(default 200)")
    parser.add_argument("--mode", choices=["mixed", "hot", "cold"],
                        default="mixed",
                        help="traffic shape: zipf-skewed designs, "
                             "all-hit, or all-miss (default mixed)")
    parser.add_argument("--designs", default=None,
                        help="comma-separated design names "
                             "(default: the full registry, composite "
                             "designs ranked hottest)")
    parser.add_argument("--hot-set", type=int, default=0, metavar="K",
                        help="restrict traffic to the K hottest designs "
                             "(0 = use them all)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="zipf skew exponent s (weight ~ rank^-s, "
                             "default 1.1)")
    parser.add_argument("--sigma", type=float, default=0.5)
    parser.add_argument("--n-seeds", type=int, default=25)
    parser.add_argument("--seed0", type=int, default=0)
    parser.add_argument("--seed", type=int, default=1234,
                        help="RNG seed for the design choices "
                             "(default 1234)")
    parser.add_argument("--wait-s", type=float, default=15.0,
                        help="seconds to wait for the server to become "
                             "ready (default 15)")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the report as JSON to FILE")
    parser.add_argument("--assert-hit-rate", type=float, default=None,
                        metavar="FRACTION",
                        help="exit 1 unless the measured hit rate is at "
                             "least FRACTION")
    parser.add_argument("--restart-warm", metavar="CACHE_DIR", default=None,
                        help="spawn the server itself with this persistent "
                             "--cache-dir, fill, kill + restart it, and "
                             "measure the warm phase across the restart")
    parser.add_argument("--server-workers", type=int, default=1,
                        help="--workers for the spawned server "
                             "(--restart-warm only; default 1)")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.clients < 1:
        parser.error("--requests and --clients must be >= 1")

    if args.restart_warm:
        return run_restart_warm(args)

    report = asyncio.run(run_loadtest(args))
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    if report["errors"]:
        return 1
    rate = report["cache"]["hit_rate"]
    if args.assert_hit_rate is not None:
        if rate is None or rate < args.assert_hit_rate:
            print(
                f"FAIL: hit rate {rate} below required "
                f"{args.assert_hit_rate}",
                file=sys.stderr,
            )
            return 1
        print(f"hit-rate assertion ok: {rate:.1%} >= "
              f"{args.assert_hit_rate:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
