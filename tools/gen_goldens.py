"""Regenerate tests/goldens/*.json — golden simulation events per design.

Run from the repository root after an intentional behavior change:

    python tools/gen_goldens.py
"""

from __future__ import annotations

import json
import pathlib

from repro.core.simulation import Simulation
from repro.exp.registry import build_in_fresh_circuit, registry

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "goldens"


def slug(name: str) -> str:
    return name.lower().replace(" ", "_").replace("(", "").replace(")", "")


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for entry in registry():
        circuit = build_in_fresh_circuit(entry)
        events = Simulation(circuit).simulate()
        # Only user-named wires: auto names depend on elaboration order.
        named = {
            name: times
            for name, times in sorted(events.items())
            if not name.startswith("_")
        }
        path = GOLDEN_DIR / f"{slug(entry.name)}.json"
        path.write_text(json.dumps({"design": entry.name, "events": named},
                                   indent=1) + "\n")
    print(f"wrote {len(registry())} goldens to {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
