"""Benchmark regression guard for the simulation core.

Runs the simulator benchmarks (``bench_scaling_bitonic.py``, the
compile-cache comparison in ``bench_compile.py``, the Monte-Carlo sweep
in ``bench_mc_scaling.py``, the vectorized-drain comparison in
``bench_mc_batched.py``, the served warm-vs-cold throughput pair in
``bench_serve.py``, the incremental-lint pair in
``bench_lint_incremental.py``, the explorer sweep pair in
``bench_explore.py``, and the persistent-tier restart pairs in
``bench_disk_cache.py``) via pytest-benchmark, writes the medians
to ``BENCH_sim.json`` at the repository root, and fails (exit code 1) if
the bitonic-8 median regressed more than the tolerance against the
committed baseline, if a repeated ``simulate()`` on a warm compile
cache is no faster than a cold compile+simulate, if the batched
Monte-Carlo drain is less than 5x faster than its per-seed reference
on any recorded design, if the warm (all-hit) serve path is less
than 10x the cold (all-miss) path, if a warm re-lint with PL4xx
reachability enabled is less than 10x a cold one, if a warm
explorer sweep is less than 10x a cold all-miss sweep, or if a fresh
consumer on a warm *disk* store is less than 5x its fully-cold
counterpart for either explore or serve. The measured
Table 2 wall-clock ratio is recorded (``table2_time_ratio``) but never
gates — the machine-independent work-ratio assertion lives in
``tests/test_exp.py``.

Usage, from the repository root::

    PYTHONPATH=src python tools/bench_guard.py            # run + guard
    PYTHONPATH=src python tools/bench_guard.py --update   # accept new baseline
    PYTHONPATH=src python tools/bench_guard.py --tolerance 0.1
    PYTHONPATH=src python tools/bench_guard.py --smoke    # CI: run, don't time

``--smoke`` executes every benchmark body once with timing collection
disabled (``--benchmark-disable``) and touches neither the guard nor
``BENCH_sim.json`` — shared CI runners are far too noisy for median
comparisons, but the benchmarks still exercise the hot paths end to end.

The ``seed`` block in BENCH_sim.json records the pre-optimization medians
and is carried forward verbatim so speedup-vs-seed stays visible across
regenerations.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = ROOT / "BENCH_sim.json"

#: The benchmark whose median is guarded against regression.
GUARDED = "test_bitonic_scaling[8]"

#: Medians measured on the seed revision (before the fast-path work),
#: kept for the speedup-vs-seed figure when no baseline file exists yet.
SEED_MEDIANS_US = {
    "test_bitonic_scaling[2]": 123.799,
    "test_bitonic_scaling[4]": 495.637,
    "test_bitonic_scaling[8]": 1714.631,
    "test_bitonic_scaling[16]": 6233.377,
}

#: Each group runs in its own pytest invocation: the guarded hot-loop
#: timings must not share a process-pool-thrashed machine state with the
#: Monte-Carlo sweeps that follow. The ``workers=4`` parametrizations
#: skip themselves on single-CPU hosts (see ``NEEDS_MULTI_CPU`` in
#: ``bench_mc_scaling.py``); :func:`mc_comparison` then records the skip
#: explicitly instead of a meaningless ratio.
BENCH_GROUPS = [
    ["benchmarks/bench_scaling_bitonic.py"],
    ["benchmarks/bench_compile.py"],
    ["benchmarks/bench_mc_scaling.py::test_mc_yield_workers"],
    ["benchmarks/bench_mc_scaling.py::test_mc_amortized"],
    ["benchmarks/bench_mc_batched.py"],
    ["benchmarks/bench_serve.py"],
    ["benchmarks/bench_lint_incremental.py"],
    ["benchmarks/bench_explore.py"],
    ["benchmarks/bench_disk_cache.py"],
]

#: Requests per timed round in ``benchmarks/bench_serve.py`` — mirrored
#: here to convert round medians into requests/second. Keep in sync.
SERVE_REQUESTS_PER_ROUND = 25

#: The warm (all-hit) serve path must beat the cold (all-miss) path by at
#: least this factor; anything less means the result cache is not paying
#: for itself.
SERVE_MIN_SPEEDUP = 10.0

#: A warm re-lint with PL4xx reachability enabled (structural-hash cache
#: hit, ``bench_lint_incremental.py``) must beat the cold exploration by
#: at least this factor; anything less means the incremental lint cache
#: is not paying for itself.
LINT_MIN_SPEEDUP = 10.0

#: A warm explorer sweep (every grid point a result-cache hit,
#: ``bench_explore.py``) must beat the cold all-miss sweep by at least
#: this factor; anything less means repeated design-space refinement
#: pays full Monte-Carlo cost every time.
EXPLORE_MIN_SPEEDUP = 10.0

#: A fresh consumer (empty in-memory tiers, the restart scenario) on a
#: pre-populated ``--cache-dir`` must beat the same consumer on an empty
#: store by at least this factor (``bench_disk_cache.py``); anything
#: less means persisting results to disk is not worth a restart's while.
DISK_MIN_SPEEDUP = 5.0

#: (consumer, warm benchmark, cold benchmark) triples recorded in the
#: ``disk_cache`` block; each pair is guarded by ``DISK_MIN_SPEEDUP``.
DISK_CACHE_PAIRS = [
    ("explore", "test_explore_fresh_process_warm_disk",
     "test_explore_fresh_process_cold"),
    ("serve", "test_serve_fresh_process_warm_disk",
     "test_serve_fresh_process_cold"),
]

#: (design, batched benchmark, per-seed benchmark) triples recorded in the
#: ``mc_batched_200_seeds_s`` block; each batched median must beat its
#: per-seed reference by at least ``MC_BATCHED_MIN_SPEEDUP``.
MC_BATCHED_PAIRS = [
    ("minmax", "test_mc_batched[minmax-batched]",
     "test_mc_batched[minmax-perseed]"),
    ("bitonic8", "test_mc_batched[bitonic8-batched]",
     "test_mc_batched[bitonic8-perseed]"),
]
MC_BATCHED_MIN_SPEEDUP = 5.0


def run_benchmarks(json_path: pathlib.Path | None, targets) -> None:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    extra = (
        [f"--benchmark-json={json_path}"]
        if json_path is not None
        else ["--benchmark-disable"]
    )
    cmd = [sys.executable, "-m", "pytest", "-q", *targets, *extra]
    result = subprocess.run(cmd, cwd=ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {result.returncode})")


def extract_medians(json_path: pathlib.Path) -> dict:
    payload = json.loads(json_path.read_text())
    medians = {}
    for bench in payload["benchmarks"]:
        medians[bench["name"]] = bench["stats"]["median"]
    return medians


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def mc_comparison(medians_s: dict, cpus: int, seq_name: str,
                  par_name: str, committed: dict | None = None) -> dict:
    """Sequential-vs-parallel block for one Monte-Carlo benchmark pair.

    On single-CPU hosts the parallel variant never ran, and a pool can
    only lose there anyway. If the committed baseline recorded a real
    ``workers4`` number (from a multi-CPU run), carry it and its speedup
    forward with an explicit note rather than overwriting them with
    null — regenerating on a 1-CPU box must not erase the only parallel
    measurement the artifact has. Without a committed number, record an
    explicit ``"skipped: 1 CPU"`` marker instead of a ratio that would
    read as a real (and damning) parallel speedup on a machine that
    cannot show one.
    """
    seq = medians_s.get(seq_name)
    par = medians_s.get(par_name)
    block = {
        "workers1": round(seq, 4) if seq else None,
        "workers4": round(par, 4) if par else None,
    }
    if par:
        block["parallel_speedup"] = round(seq / par, 3) if seq else None
        return block
    prior = committed or {}
    if prior.get("workers4") is not None:
        block["workers4"] = prior["workers4"]
        block["parallel_speedup"] = prior.get("parallel_speedup")
        block["note"] = (
            "workers4 carried forward from committed baseline; the "
            "parallel variant did not run on this host"
        )
    elif cpus < 2:
        block["parallel_speedup"] = "skipped: 1 CPU"
    else:
        block["parallel_speedup"] = None
    return block


def mc_batched_block(medians_s: dict) -> dict:
    """Batched-vs-per-seed drain comparison (bench_mc_batched.py)."""
    block = {}
    for design, batched_name, perseed_name in MC_BATCHED_PAIRS:
        batched = medians_s.get(batched_name)
        perseed = medians_s.get(perseed_name)
        block[design] = {
            "batched": round(batched, 4) if batched else None,
            "perseed": round(perseed, 4) if perseed else None,
            "batched_speedup": round(perseed / batched, 3)
            if batched and perseed else None,
        }
    return block


def serve_throughput_block(medians_s: dict) -> dict:
    """Warm-vs-cold served request throughput (bench_serve.py).

    The benchmark times rounds of ``SERVE_REQUESTS_PER_ROUND`` requests,
    so requests/second is the round size over the round median.
    """
    warm = medians_s.get("test_serve_warm")
    cold = medians_s.get("test_serve_cold")
    return {
        "requests_per_round": SERVE_REQUESTS_PER_ROUND,
        "cold_rps": round(SERVE_REQUESTS_PER_ROUND / cold, 2)
        if cold else None,
        "warm_rps": round(SERVE_REQUESTS_PER_ROUND / warm, 2)
        if warm else None,
        "warm_vs_cold": round(cold / warm, 2) if cold and warm else None,
    }


def lint_incremental_block(medians_s: dict) -> dict:
    """Cold-vs-warm incremental reach-lint (bench_lint_incremental.py)."""
    cold = medians_s.get("test_lint_reach_cold")
    warm = medians_s.get("test_lint_reach_warm")
    return {
        "cold_s": round(cold, 4) if cold else None,
        "warm_s": round(warm, 4) if warm else None,
        "warm_vs_cold": round(cold / warm, 2) if cold and warm else None,
    }


def explore_cache_block(medians_s: dict) -> dict:
    """Cold-vs-warm design-space sweep (bench_explore.py)."""
    cold = medians_s.get("test_explore_cold")
    warm = medians_s.get("test_explore_warm")
    return {
        "cold_s": round(cold, 4) if cold else None,
        "warm_s": round(warm, 6) if warm else None,
        "warm_vs_cold": round(cold / warm, 2) if cold and warm else None,
    }


def disk_cache_block(medians_s: dict, committed: dict | None = None) -> dict:
    """Fresh-process warm-disk vs fully-cold pairs (bench_disk_cache.py).

    Like :func:`mc_comparison`, a pair that did not run on this host is
    carried forward verbatim from the committed baseline (with a note)
    rather than overwritten with nulls — regenerating must not erase the
    only persistent-tier measurement the artifact has.
    """
    prior = committed or {}
    block = {}
    for consumer, warm_name, cold_name in DISK_CACHE_PAIRS:
        warm = medians_s.get(warm_name)
        cold = medians_s.get(cold_name)
        if cold and warm:
            block[consumer] = {
                "cold_s": round(cold, 4),
                "warm_disk_s": round(warm, 6),
                "warm_vs_cold": round(cold / warm, 2),
            }
        elif prior.get(consumer, {}).get("warm_vs_cold") is not None:
            block[consumer] = dict(
                prior[consumer],
                note="carried forward from committed baseline; the pair "
                     "did not run on this host",
            )
        else:
            block[consumer] = {
                "cold_s": round(cold, 4) if cold else None,
                "warm_disk_s": round(warm, 6) if warm else None,
                "warm_vs_cold": None,
            }
    return block


def table2_time_ratio_block() -> dict:
    """Measured Table 2 wall-clock ratio (schematic analog vs PyLSE).

    Informational only — the gating assertion on Table 2 lives in
    ``tests/test_exp.py`` on the machine-independent *work* ratio
    (RK4 junction-steps per discrete event). The wall-clock ratio the
    paper reports is still worth tracking, but it depends on host speed
    and scheduler noise, so it is recorded here without a floor and
    never fails the guard.
    """
    from repro.exp import table2

    rows = table2.run(analog_dt=0.2)
    return {
        "analog_dt_ps": 0.2,
        "per_design": {
            row.name: {
                "time_ratio": round(row.time_ratio, 1),
                "work_ratio": round(row.work_ratio, 1),
            }
            for row in rows
        },
        "avg_time_ratio": round(
            sum(row.time_ratio for row in rows) / len(rows), 1
        ),
        "avg_work_ratio": round(
            sum(row.work_ratio for row in rows) / len(rows), 1
        ),
        "gating": False,
    }


def compile_cache_block(medians_us: dict) -> dict:
    """Cold-compile vs warm-repeat-simulate comparison (bench_compile.py)."""
    cold = medians_us.get("test_simulate_cold")
    warm = medians_us.get("test_simulate_warm")
    return {
        "compile_cold_us": round(medians_us["test_compile_cold"], 3)
        if "test_compile_cold" in medians_us else None,
        "simulate_cold_us": round(cold, 3) if cold else None,
        "simulate_warm_us": round(warm, 3) if warm else None,
        "warm_vs_cold_speedup": round(cold / warm, 3)
        if cold and warm else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression of the guarded median "
             "(default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the new numbers even if the guard fails",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run every benchmark once without timing (for CI); "
             "no guard, no BENCH_sim.json write",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        for targets in BENCH_GROUPS:
            run_benchmarks(None, targets)
        print("smoke run complete (timing disabled, baseline untouched)")
        return 0

    baseline = None
    seed_block = dict(SEED_MEDIANS_US)
    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
        baseline = committed.get("medians_us", {}).get(GUARDED)
        seed_block = committed.get("seed_medians_us", seed_block)

    medians_s = {}
    with tempfile.TemporaryDirectory() as tmp:
        for i, targets in enumerate(BENCH_GROUPS):
            raw = pathlib.Path(tmp) / f"bench{i}.json"
            run_benchmarks(raw, targets)
            medians_s.update(extract_medians(raw))

    medians_us = {name: value * 1e6 for name, value in medians_s.items()}
    guarded_us = medians_us.get(GUARDED)
    if guarded_us is None:
        raise SystemExit(f"guarded benchmark {GUARDED!r} missing from run")

    cpus = cpu_count()
    doc = {
        "generated_by": "tools/bench_guard.py",
        "guarded": GUARDED,
        "tolerance": args.tolerance,
        "cpus": cpus,
        "seed_medians_us": seed_block,
        "medians_us": {k: round(v, 3) for k, v in medians_us.items()},
        "speedup_vs_seed": {
            name: round(seed_block[name] / medians_us[name], 3)
            for name in seed_block
            if name in medians_us and medians_us[name] > 0
        },
        "compile_cache": compile_cache_block(medians_us),
        "mc_yield_200_seeds_s": mc_comparison(
            medians_s, cpus,
            "test_mc_yield_workers[1]", "test_mc_yield_workers[4]",
            committed=committed.get("mc_yield_200_seeds_s"),
        ),
        "mc_amortized_800_trials_s": mc_comparison(
            medians_s, cpus,
            "test_mc_amortized[1]", "test_mc_amortized[4]",
            committed=committed.get("mc_amortized_800_trials_s"),
        ),
        "mc_batched_200_seeds_s": mc_batched_block(medians_s),
        "serve_throughput": serve_throughput_block(medians_s),
        "lint_incremental": lint_incremental_block(medians_s),
        "explore_cache": explore_cache_block(medians_s),
        "disk_cache": disk_cache_block(
            medians_s, committed=committed.get("disk_cache")
        ),
        "table2_time_ratio": table2_time_ratio_block(),
    }

    failed = False
    if baseline is not None:
        limit = baseline * (1 + args.tolerance)
        print(
            f"{GUARDED}: {guarded_us:.1f} us "
            f"(baseline {baseline:.1f} us, limit {limit:.1f} us)"
        )
        if guarded_us > limit:
            print(
                f"REGRESSION: median exceeds baseline by "
                f"{guarded_us / baseline - 1:.1%} (> {args.tolerance:.0%})",
                file=sys.stderr,
            )
            failed = True
    else:
        print(f"{GUARDED}: {guarded_us:.1f} us (no committed baseline yet)")

    cache = doc["compile_cache"]
    cold, warm = cache["simulate_cold_us"], cache["simulate_warm_us"]
    if cold and warm:
        print(
            f"compile cache: cold {cold:.1f} us vs warm repeat {warm:.1f} us "
            f"({cache['warm_vs_cold_speedup']}x)"
        )
        if warm >= cold:
            print(
                "REGRESSION: warm repeated simulate() is no faster than a "
                "cold compile+simulate — the compile cache is not working",
                file=sys.stderr,
            )
            failed = True

    for design, pair in doc["mc_batched_200_seeds_s"].items():
        speedup = pair["batched_speedup"]
        if speedup is None:
            print(
                f"REGRESSION: mc_batched[{design}] pair incomplete "
                f"(batched={pair['batched']}, perseed={pair['perseed']})",
                file=sys.stderr,
            )
            failed = True
            continue
        print(
            f"mc batched [{design}]: batched {pair['batched']:.4f} s vs "
            f"per-seed {pair['perseed']:.4f} s ({speedup}x)"
        )
        if speedup < MC_BATCHED_MIN_SPEEDUP:
            print(
                f"REGRESSION: batched Monte-Carlo drain on {design} is only "
                f"{speedup}x the per-seed reference "
                f"(floor {MC_BATCHED_MIN_SPEEDUP}x)",
                file=sys.stderr,
            )
            failed = True

    serve = doc["serve_throughput"]
    speedup = serve["warm_vs_cold"]
    if speedup is None:
        print(
            f"REGRESSION: serve throughput pair incomplete "
            f"(cold={serve['cold_rps']}, warm={serve['warm_rps']})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"serve throughput: warm {serve['warm_rps']:.0f} req/s vs "
            f"cold {serve['cold_rps']:.0f} req/s ({speedup}x)"
        )
        if speedup < SERVE_MIN_SPEEDUP:
            print(
                f"REGRESSION: warm serve path is only {speedup}x the "
                f"cold path (floor {SERVE_MIN_SPEEDUP}x) — the result "
                f"cache is not paying for itself",
                file=sys.stderr,
            )
            failed = True

    lint = doc["lint_incremental"]
    speedup = lint["warm_vs_cold"]
    if speedup is None:
        print(
            f"REGRESSION: lint incremental pair incomplete "
            f"(cold={lint['cold_s']}, warm={lint['warm_s']})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"lint incremental: cold {lint['cold_s']:.3f} s vs "
            f"warm re-lint {lint['warm_s']:.4f} s ({speedup}x)"
        )
        if speedup < LINT_MIN_SPEEDUP:
            print(
                f"REGRESSION: warm re-lint is only {speedup}x the cold "
                f"reach analysis (floor {LINT_MIN_SPEEDUP}x) — the "
                f"incremental lint cache is not paying for itself",
                file=sys.stderr,
            )
            failed = True

    explore = doc["explore_cache"]
    speedup = explore["warm_vs_cold"]
    if speedup is None:
        print(
            f"REGRESSION: explore cache pair incomplete "
            f"(cold={explore['cold_s']}, warm={explore['warm_s']})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"explore cache: cold sweep {explore['cold_s']:.3f} s vs "
            f"warm sweep {explore['warm_s']:.5f} s ({speedup}x)"
        )
        if speedup < EXPLORE_MIN_SPEEDUP:
            print(
                f"REGRESSION: warm explorer sweep is only {speedup}x the "
                f"cold sweep (floor {EXPLORE_MIN_SPEEDUP}x) — the result "
                f"cache is not paying for itself",
                file=sys.stderr,
            )
            failed = True

    for consumer, pair in doc["disk_cache"].items():
        speedup = pair["warm_vs_cold"]
        if speedup is None:
            print(
                f"REGRESSION: disk_cache[{consumer}] pair incomplete "
                f"(cold={pair['cold_s']}, warm={pair['warm_disk_s']})",
                file=sys.stderr,
            )
            failed = True
            continue
        carried = " (carried forward)" if "note" in pair else ""
        print(
            f"disk cache [{consumer}]: cold {pair['cold_s']:.3f} s vs "
            f"fresh-process warm disk {pair['warm_disk_s']:.5f} s "
            f"({speedup}x{carried})"
        )
        if speedup < DISK_MIN_SPEEDUP:
            print(
                f"REGRESSION: a fresh {consumer} consumer on a warm disk "
                f"store is only {speedup}x its fully-cold counterpart "
                f"(floor {DISK_MIN_SPEEDUP}x) — the persistent tier is "
                f"not paying for itself",
                file=sys.stderr,
            )
            failed = True

    # Informational, never gates (see table2_time_ratio_block).
    ratios = doc["table2_time_ratio"]
    print(
        f"table2 measured ratios (non-gating): wall-clock "
        f"{ratios['avg_time_ratio']}x, work {ratios['avg_work_ratio']}x"
    )

    if not failed or args.update:
        BENCH_FILE.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")

    return 1 if failed and not args.update else 0


if __name__ == "__main__":
    sys.exit(main())
