"""Regenerate tests/goldens_lint/ — golden lint report formats.

The reference circuit lives in tests/test_lint_emitters.py
(``build_reference_circuit``); this script re-renders its JSON and SARIF
reports. Run from the repository root after an intentional format change:

    PYTHONPATH=src:tests python tools/gen_lint_goldens.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests"))

from repro.core.circuit import reset_working_circuit  # noqa: E402
from repro.lint import json_payload, sarif_payload  # noqa: E402

from test_lint_emitters import build_reference_circuit  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "goldens_lint"


def dump(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    reset_working_circuit()
    report = build_reference_circuit()
    (GOLDEN_DIR / "reference.json").write_text(dump(json_payload([report])))
    reset_working_circuit()
    report = build_reference_circuit()
    (GOLDEN_DIR / "reference.sarif").write_text(dump(sarif_payload([report])))
    print(f"wrote {GOLDEN_DIR}/reference.json and reference.sarif")


if __name__ == "__main__":
    main()
