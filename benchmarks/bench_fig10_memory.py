"""Figure 10: simulation cost of the memory hole (Functional element)."""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs import make_memory


def build():
    with fresh_circuit() as circuit:
        memory = make_memory()

        def bits(name, value, at):
            return [
                inp_at(*([at] if (value >> k) & 1 else []), name=f"{name}{k}")
                for k in reversed(range(4))
            ]

        ra = bits("ra", 5, 60.0)
        wa = bits("wa", 5, 10.0)
        d1 = inp_at(10.0, name="d1")
        d0 = inp_at(10.0, name="d0")
        we = inp_at(10.0, name="we")
        clk = inp(start=25.0, period=50.0, n=3, name="clk")
        q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
        q1.observe("q1")
        q0.observe("q0")
    return circuit


def test_memory_hole_simulation(benchmark):
    circuit = build()
    events = benchmark(lambda: Simulation(circuit).simulate())
    assert events["q1"] == [80.0]
