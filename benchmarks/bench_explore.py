"""Cold-vs-warm sweep benchmarks for the design-space explorer.

Each timed round sweeps the same small grid through
:class:`repro.explore.ExploreEngine`:

* ``cold`` — a fresh engine per round: every point pays elaboration,
  compilation, baseline simulation, and a full Monte-Carlo measurement
  (the all-miss floor);
* ``warm`` — one pre-warmed engine reused across rounds: every point is
  a digest-memo hit plus a result-cache hit, measuring pure lookup and
  assembly overhead.

``tools/bench_guard.py`` records both medians in the ``explore_cache``
block of ``BENCH_sim.json`` and fails if warm is less than 10x faster
than cold — the result cache paying for itself is what makes repeated
and refined sweeps cheap.
"""

from repro.explore import ExploreEngine

#: Mirrored in ``tools/bench_guard.py`` (the ``explore_cache`` block) —
#: keep the two definitions in sync.
EXPLORE_BENCH_FAMILY = "racetree"
EXPLORE_BENCH_GRID = {"depth": [1, 2, 3]}
EXPLORE_BENCH_SIGMA = 0.4
EXPLORE_BENCH_SEEDS = 12


def _sweep(engine: ExploreEngine):
    return engine.sweep(
        EXPLORE_BENCH_FAMILY,
        EXPLORE_BENCH_GRID,
        sigma=EXPLORE_BENCH_SIGMA,
        n_seeds=EXPLORE_BENCH_SEEDS,
    )


def test_explore_cold(benchmark):
    def round():
        return _sweep(ExploreEngine())

    sweep = benchmark.pedantic(round, rounds=3, iterations=1, warmup_rounds=1)
    assert all(not point.cached for point in sweep.points)
    assert sweep.pareto


def test_explore_warm(benchmark):
    engine = ExploreEngine()
    cold = _sweep(engine)   # prime every cache outside the timed region

    sweep = benchmark.pedantic(
        lambda: _sweep(engine), rounds=5, iterations=1, warmup_rounds=1
    )
    assert all(point.cached for point in sweep.points)
    assert [p.result for p in sweep.points] == [p.result for p in cold.points]
