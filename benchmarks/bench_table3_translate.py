"""Table 3: cost of translating PyLSE circuits into Timed Automata."""

import pytest

from repro.exp.registry import build_in_fresh_circuit, registry
from repro.ta import translate_circuit

ENTRIES = {entry.name: entry for entry in registry()}


@pytest.mark.parametrize(
    "name", ["JTL", "AND", "JOIN", "Min-Max", "Race Tree", "Bitonic Sort 8"]
)
def test_translate(benchmark, name):
    circuit = build_in_fresh_circuit(ENTRIES[name])
    result = benchmark(lambda: translate_circuit(circuit))
    assert result.cell_stats()["ta"] >= 2


def test_translate_all_22_designs(benchmark):
    circuits = [build_in_fresh_circuit(e) for e in registry()]

    def run():
        return [translate_circuit(c) for c in circuits]

    results = benchmark(run)
    assert len(results) == 22
