"""Table 3: model-checking cost (Queries 1 + 2) per design.

Basic cells verify in well under a second; the min-max pair takes ~1-2 s;
the larger designs blow up (bounded here by max_states so the benchmark
terminates — the paper marks them as infeasible).
"""

import pytest

from repro.exp.registry import build_in_fresh_circuit, registry
from repro.mc import verify_design

ENTRIES = {entry.name: entry for entry in registry()}


@pytest.mark.parametrize("name", ["JTL", "C", "DRO", "AND", "JOIN"])
def test_verify_basic_cell(benchmark, name):
    circuit = build_in_fresh_circuit(ENTRIES[name])
    report = benchmark.pedantic(
        lambda: verify_design(circuit), rounds=1, iterations=1
    )
    assert report.ok


def test_verify_min_max(benchmark):
    circuit = build_in_fresh_circuit(ENTRIES["Min-Max"])
    report = benchmark.pedantic(
        lambda: verify_design(circuit), rounds=1, iterations=1
    )
    assert report.ok


def test_verify_race_tree_hits_budget(benchmark):
    """State explosion: the race tree exhausts a small budget quickly."""
    circuit = build_in_fresh_circuit(ENTRIES["Race Tree"])
    report = benchmark.pedantic(
        lambda: verify_design(circuit, max_states=400),
        rounds=1, iterations=1,
    )
    assert not report.result.completed
