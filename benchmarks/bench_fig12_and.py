"""Figure 12: simulation cost of the Synchronous And Element.

The paper's headline usability demo; this pins the discrete-event
simulator's cost on the exact published stimulus.
"""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.sfq import and_s


def build():
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    return circuit


def test_figure12_simulation(benchmark):
    circuit = build()

    def run():
        return Simulation(circuit).simulate()

    events = benchmark(run)
    assert events["Q"] == [209.2, 259.2, 309.2]


def test_figure12_elaboration(benchmark):
    """Cost of building the circuit (elaboration-through-execution)."""
    result = benchmark(build)
    assert len(result) == 4  # 3 inputs + 1 AND
