"""Benchmark fixtures: fresh working circuit per benchmark."""

import pytest

from repro.core.circuit import reset_working_circuit


@pytest.fixture(autouse=True)
def clean_circuit():
    reset_working_circuit()
    yield
    reset_working_circuit()
