"""Incremental-lint benchmarks: cold vs warm PL4xx reachability analysis.

The PL4xx layer (``repro.lint.reach_rules``) memoizes a finished
:class:`ReachAnalysis` under ``lint_cache_key`` — the design's structural
hash plus the rule set, tolerance, and zone budget. A re-lint of an
unchanged design must therefore skip the zone exploration entirely and
pay only circuit compilation (itself memoized) plus a dictionary lookup.

* ``cold`` — the analysis cache is cleared inside every round, so each
  ``lint_circuit(reach=True)`` call pays the full DBM/zone exploration
  of Bitonic Sort 8 up to the state budget;
* ``warm`` — the cache is primed once outside the timed region; every
  timed call is a pure hit.

``tools/bench_guard.py`` records both medians in the
``lint_incremental`` block of ``BENCH_sim.json`` and fails if the warm
re-lint is less than 10x the cold run — the incremental cache paying
for itself is the entire point of keying analyses by structural hash.
"""

import pytest

from repro.exp.registry import build_in_fresh_circuit, registry
from repro.lint import ReachBudget, clear_reach_cache, lint_circuit

LINT_BENCH_DESIGN = "Bitonic Sort 8"
ENTRIES = {entry.name: entry for entry in registry()}

#: Deliberately truncating budget. On Bitonic Sort 8 a single zone-graph
#: state expansion costs on the order of a second (hundreds of automata
#: per successor computation), so the exploration hits ``time_limit``
#: long before ``max_states`` and the cold round costs roughly the time
#: limit — kept small here so the guard run stays in the seconds range.
#: Truncation only *reduces* findings (BFS prefix), and the cache key
#: includes the budget, so the comparison is exact either way.
LINT_BENCH_BUDGET = ReachBudget(max_states=300, time_limit=2.0)


@pytest.fixture(scope="module")
def bitonic8_circuit():
    return build_in_fresh_circuit(ENTRIES[LINT_BENCH_DESIGN])


def _lint_reach(circuit):
    return lint_circuit(circuit, design=LINT_BENCH_DESIGN, reach=True,
                        reach_budget=LINT_BENCH_BUDGET)


def test_lint_reach_cold(benchmark, bitonic8_circuit):
    def round():
        clear_reach_cache()
        return _lint_reach(bitonic8_circuit)

    report = benchmark.pedantic(round, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert report.reach and report.reach["cached"] is False


def test_lint_reach_warm(benchmark, bitonic8_circuit):
    # Prime the cache: the one and only exploration happens outside the
    # timed region.
    _lint_reach(bitonic8_circuit)

    def round():
        return _lint_reach(bitonic8_circuit)

    report = benchmark.pedantic(round, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert report.reach and report.reach["cached"] is True
