"""Warm-disk vs fully-cold benchmarks for the persistent cache tier.

Every timed round constructs a **fresh consumer** — an engine or service
whose in-memory tiers start empty, the restart scenario the disk tier
exists for:

* ``cold`` — a fresh consumer on a fresh (empty) store: every point pays
  elaboration, baseline simulation, and the full Monte-Carlo measurement;
* ``warm_disk`` — a fresh consumer on a pre-populated store: elaboration
  still runs (the digest is the key), but every measurement is a disk
  read + JSON decode instead of a Monte-Carlo sweep.

``tools/bench_guard.py`` records both medians in the ``disk_cache`` block
of ``BENCH_sim.json`` and fails if warm-disk is less than 5x faster than
cold — the floor that makes ``--cache-dir`` worth a process's while. True
cross-process persistence (the same store read by a separate interpreter)
is covered by the CI cache-persistence smoke, which asserts *zero*
computations rather than a speedup.
"""

import pytest

from repro.explore import ExploreEngine
from repro.serve import YieldService

#: Mirrored in ``tools/bench_guard.py`` (the ``disk_cache`` block) —
#: keep the two definitions in sync. Both paths pay resolve (elaboration
#: plus the baseline simulation: the digest *is* the key), so the
#: warm/cold ratio is governed by how many Monte-Carlo seeds the disk
#: hit avoids — seed counts are sized to clear the 5x floor with margin.
DISK_BENCH_FAMILY = "racetree"
DISK_BENCH_GRID = {"depth": [1, 2, 3]}
DISK_BENCH_SIGMA = 0.4
DISK_BENCH_SEEDS = 1000

DISK_BENCH_DESIGN = "Min-Max"
DISK_BENCH_SERVE_SIGMA = 0.5
DISK_BENCH_SERVE_SEEDS = 4000


def _sweep(engine: ExploreEngine):
    return engine.sweep(
        DISK_BENCH_FAMILY,
        DISK_BENCH_GRID,
        sigma=DISK_BENCH_SIGMA,
        n_seeds=DISK_BENCH_SEEDS,
    )


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store populated once by a throwaway engine (outside any timing)."""
    store = tmp_path_factory.mktemp("disk-cache-warm")
    filler = ExploreEngine(cache_dir=store)
    sweep = _sweep(filler)
    assert filler.computations == len(sweep.points)
    return store


def test_explore_fresh_process_cold(benchmark, tmp_path_factory):
    def round():
        # A brand-new store per round: nothing can hit, not even on disk.
        store = tmp_path_factory.mktemp("disk-cache-cold")
        return _sweep(ExploreEngine(cache_dir=store))

    sweep = benchmark.pedantic(round, rounds=3, iterations=1,
                               warmup_rounds=1)
    assert all(not point.cached for point in sweep.points)


def test_explore_fresh_process_warm_disk(benchmark, warm_store):
    def round():
        # Fresh engine = empty memory tiers; only the disk store is warm.
        return _sweep(ExploreEngine(cache_dir=warm_store))

    sweep = benchmark.pedantic(round, rounds=5, iterations=1,
                               warmup_rounds=1)
    assert all(point.cached for point in sweep.points)


@pytest.fixture(scope="module")
def warm_serve_store(tmp_path_factory):
    store = tmp_path_factory.mktemp("disk-cache-serve-warm")
    service = YieldService(cache_dir=store)
    _, cached = service.yield_({
        "design": DISK_BENCH_DESIGN,
        "sigma": DISK_BENCH_SERVE_SIGMA,
        "n_seeds": DISK_BENCH_SERVE_SEEDS,
    })
    assert not cached
    return store


def test_serve_fresh_process_cold(benchmark, tmp_path_factory):
    def round():
        store = tmp_path_factory.mktemp("disk-cache-serve-cold")
        service = YieldService(cache_dir=store)
        result, cached = service.yield_({
            "design": DISK_BENCH_DESIGN,
            "sigma": DISK_BENCH_SERVE_SIGMA,
            "n_seeds": DISK_BENCH_SERVE_SEEDS,
        })
        assert not cached
        return result

    benchmark.pedantic(round, rounds=3, iterations=1, warmup_rounds=1)


def test_serve_fresh_process_warm_disk(benchmark, warm_serve_store):
    def round():
        service = YieldService(cache_dir=warm_serve_store)
        result, cached = service.yield_({
            "design": DISK_BENCH_DESIGN,
            "sigma": DISK_BENCH_SERVE_SIGMA,
            "n_seeds": DISK_BENCH_SERVE_SEEDS,
        })
        assert cached
        return result

    benchmark.pedantic(round, rounds=5, iterations=1, warmup_rounds=1)
