"""Ablation: zone-inclusion subsumption in the model checker's passed list.

With subsumption off, the passed list only deduplicates identical zones;
more symbolic states are explored for the same verdict. On small networks
the O(zones) inclusion scans can cost more than they save — the interesting
output of this ablation is the states-explored gap, which widens with
design size (see tests/test_mc.py for the states assertion).
"""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp
from repro.core.simulation import Simulation
from repro.mc import ModelChecker
from repro.sfq import and_s, dro
from repro.ta import no_error_query, translate_circuit


def build_network():
    with fresh_circuit() as circuit:
        from repro.core.helpers import inp_at

        a = inp_at(30, 115, 230, name="A")
        b = inp_at(65, 130, 245, name="B")
        clk = inp(start=50, period=50, n=5, name="CLK")
        and_s(a, b, clk, name="Q")
    translation = translate_circuit(circuit)
    return translation


def test_with_inclusion_pruning(benchmark):
    translation = build_network()
    query = no_error_query(translation)
    result = benchmark.pedantic(
        lambda: ModelChecker(translation.network, use_inclusion=True).run([query]),
        rounds=1, iterations=1,
    )
    assert result.satisfied


def test_without_inclusion_pruning(benchmark):
    translation = build_network()
    query = no_error_query(translation)
    result = benchmark.pedantic(
        lambda: ModelChecker(
            translation.network, use_inclusion=False, max_states=100_000
        ).run([query]),
        rounds=1, iterations=1,
    )
    assert not result.violations
