"""Compile-cache effect: cold compile vs cached repeat simulation.

``compile_circuit`` memoizes its result on the circuit keyed by the
mutation version, so only the *first* ``simulate()`` after elaboration (or
after a structural change) pays for validation, dense-id assignment,
topology analysis, and hashing. These benchmarks measure the three legs on
the bitonic-8 sorter:

* ``test_compile_cold`` — the compile pass alone (memo invalidated each
  round);
* ``test_simulate_cold`` — compile + simulate, the first-call cost;
* ``test_simulate_warm`` — simulate on a warm memo, the steady-state cost
  of every repeated ``simulate()`` / ``measure_yield()`` trial.

``tools/bench_guard.py`` records all three in ``BENCH_sim.json`` and fails
if the warm repeat does not beat the cold path — the cache's reason to
exist.
"""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.ir import compile_circuit
from repro.core.simulation import Simulation
from repro.designs import bitonic_delay, bitonic_sorter

TIMES = [((k * 37) % 8) * 12.0 + 5.0 for k in range(8)]


def build_bitonic8():
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(TIMES)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
    return circuit


def test_compile_cold(benchmark):
    circuit = build_bitonic8()

    def compile_cold():
        circuit._mutated()  # drop the memo: force a full compile pass
        return compile_circuit(circuit)

    compiled = benchmark(compile_cold)
    assert len(compiled) == len(circuit)


def test_simulate_cold(benchmark):
    circuit = build_bitonic8()

    def simulate_cold():
        circuit._mutated()
        return Simulation(circuit).simulate()

    events = benchmark(simulate_cold)
    firsts = [events[f"o{k}"][0] for k in range(8)]
    assert firsts == sorted(t + bitonic_delay(8) for t in TIMES)


def test_simulate_warm(benchmark):
    circuit = build_bitonic8()
    compile_circuit(circuit)  # prime the memo once

    events = benchmark(lambda: Simulation(circuit).simulate())
    firsts = [events[f"o{k}"][0] for k in range(8)]
    assert firsts == sorted(t + bitonic_delay(8) for t in TIMES)
