"""Table 2 (PyLSE side): discrete-event simulation time of the four designs.

Pairs with bench_table2_analog.py; the ratio between the two is the paper's
"9879x less time to simulate" claim (shape: orders of magnitude).
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_sorter, min_max
from repro.sfq import c, c_inv

A_TIMES, B_TIMES = (115, 215, 315), (64, 184, 304)
SORT_TIMES = (20, 70, 10, 45, 5, 90, 33, 60)


def build_c():
    a = inp_at(*A_TIMES, name="A")
    b = inp_at(*B_TIMES, name="B")
    c(a, b, name="q")


def build_inv_c():
    a = inp_at(*A_TIMES, name="A")
    b = inp_at(*B_TIMES, name="B")
    c_inv(a, b, name="q")


def build_min_max():
    a = inp_at(*A_TIMES, name="A")
    b = inp_at(*B_TIMES, name="B")
    low, high = min_max(a, b)
    low.observe("low")
    high.observe("high")


def build_bitonic8():
    ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(SORT_TIMES)]
    bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])


@pytest.mark.parametrize(
    "name,build",
    [
        ("C", build_c),
        ("InvC", build_inv_c),
        ("MinMax", build_min_max),
        ("Bitonic8", build_bitonic8),
    ],
    ids=lambda x: x if isinstance(x, str) else "",
)
def test_pylse_simulation(benchmark, name, build):
    with fresh_circuit() as circuit:
        build()
    events = benchmark(lambda: Simulation(circuit).simulate())
    assert any(events.values())
