"""Scaling: discrete-event simulation cost vs sorter size (2..16 inputs).

Extends Table 2's bitonic row into a scaling curve: cell count grows as
O(n log^2 n) and simulation time follows the pulse count.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_delay, bitonic_sorter


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_bitonic_scaling(benchmark, n):
    times = [((k * 37) % n) * 12.0 + 5.0 for k in range(n)]
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(n)])
    events = benchmark(lambda: Simulation(circuit).simulate())
    firsts = [events[f"o{k}"][0] for k in range(n)]
    assert firsts == sorted(t + bitonic_delay(n) for t in times)
