"""Scaling of the race-logic toolkit: min-trees and winner-take-all.

Winner-take-all is quadratic in cells (each input is split n ways and
inhibits every other); the min tree is linear. The benchmark pins both the
elaboration and simulation cost as n grows.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.simulation import Simulation
from repro.temporal import TemporalCode, min_n, tree_latency, winner_take_all

CODE = TemporalCode(offset=10.0, unit=8.0)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_min_tree_scaling(benchmark, n):
    values = [(k * 5) % n + k % 3 for k in range(n)]
    with fresh_circuit() as circuit:
        min_n(CODE.encode_inputs(values), name="MIN")
    events = benchmark(lambda: Simulation(circuit).simulate())
    decoded = CODE.from_time(events["MIN"][0], tree_latency(n))
    assert decoded == min(values)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_winner_take_all_scaling(benchmark, n):
    values = [float(3 * k + 5) for k in range(n)]
    labels = [f"w{k}" for k in range(n)]
    with fresh_circuit() as circuit:
        winner_take_all(CODE.encode_inputs(values), names=labels)
    events = benchmark(lambda: Simulation(circuit).simulate())
    winners = [k for k, label in enumerate(labels) if events[label]]
    assert winners == [0]
