"""Request-throughput benchmarks for the yield service (repro.serve).

Each timed round issues ``SERVE_REQUESTS_PER_ROUND`` ``POST /yield``
requests for the Min-Max registry design over one keep-alive connection
to an in-process server (``repro.serve.serving``), bracketing the result
cache:

* ``warm`` — the identical request repeated: after the priming miss,
  every request is a cache hit and the round measures pure service
  overhead (HTTP parse, key construction, LRU lookup, JSON encode);
* ``cold`` — a unique sigma per request: every request misses and pays
  a full ``measure_yield`` Monte-Carlo run (the all-miss floor).

``tools/bench_guard.py`` records both as requests/second in the
``serve_throughput`` block of ``BENCH_sim.json`` and fails if the warm
path is less than 10x the cold path — the cache paying for itself is the
entire point of the service.
"""

import itertools
import json
from http.client import HTTPConnection

import pytest

from repro.serve import serving

#: Requests per timed round. Mirrored in ``tools/bench_guard.py`` (which
#: converts the recorded round medians into requests/second) — keep the
#: two definitions in sync.
SERVE_REQUESTS_PER_ROUND = 25

SERVE_BENCH_DESIGN = "Min-Max"
SERVE_BENCH_SEEDS = 16
SERVE_BENCH_SIGMA = 0.4


@pytest.fixture(scope="module")
def serve_port():
    """One in-process server shared by both benchmarks."""
    with serving(port=0, workers=1) as server:
        yield server.server_address[1]


def _post_yield(conn: HTTPConnection, sigma: float) -> str:
    body = json.dumps({
        "design": SERVE_BENCH_DESIGN,
        "sigma": sigma,
        "n_seeds": SERVE_BENCH_SEEDS,
    })
    conn.request("POST", "/yield", body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    assert response.status == 200, response.read()
    response.read()
    return response.headers["X-Repro-Cache"]


def test_serve_warm(benchmark, serve_port):
    conn = HTTPConnection("127.0.0.1", serve_port)
    try:
        # Prime the cache: the one and only miss happens outside the
        # timed region.
        _post_yield(conn, SERVE_BENCH_SIGMA)

        def round():
            for _ in range(SERVE_REQUESTS_PER_ROUND):
                outcome = _post_yield(conn, SERVE_BENCH_SIGMA)
            return outcome

        outcome = benchmark.pedantic(
            round, rounds=5, iterations=1, warmup_rounds=1
        )
        assert outcome == "hit"
    finally:
        conn.close()


def test_serve_cold(benchmark, serve_port):
    conn = HTTPConnection("127.0.0.1", serve_port)
    # Unique-but-equivalent sigmas: every request is a genuine miss of
    # essentially identical Monte-Carlo cost, never colliding with the
    # warm benchmark's key.
    sigmas = (SERVE_BENCH_SIGMA + 0.1 + i * 1e-6 for i in itertools.count())
    try:
        def round():
            for _ in range(SERVE_REQUESTS_PER_ROUND):
                outcome = _post_yield(conn, next(sigmas))
            return outcome

        outcome = benchmark.pedantic(
            round, rounds=3, iterations=1, warmup_rounds=1
        )
        assert outcome == "miss"
    finally:
        conn.close()
