"""Section 5.2: cost of variability-enabled simulation.

Measures the overhead of Gaussian per-delay sampling on the bitonic-8
sorter relative to the deterministic baseline.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_sorter

SORT_TIMES = (20, 70, 10, 45, 5, 90, 33, 60)


def build():
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(SORT_TIMES)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
    return circuit


def test_deterministic_baseline(benchmark):
    circuit = build()
    events = benchmark(lambda: Simulation(circuit).simulate())
    assert events["o0"] == [155.0]


def test_gaussian_variability(benchmark):
    circuit = build()
    events = benchmark(
        lambda: Simulation(circuit).simulate(
            variability={"stddev": 0.2}, seed=1
        )
    )
    assert len(events["o0"]) == 1


def test_custom_function_variability(benchmark):
    circuit = build()
    events = benchmark(
        lambda: Simulation(circuit).simulate(
            variability=lambda d, node: d * 1.01, seed=1
        )
    )
    assert len(events["o0"]) == 1
