"""Ablation: analog integrator step size vs cost and timing accuracy.

The RCSJ solver's dt trades wall-clock for pulse-time accuracy; the min-max
pair at dt=0.05 (default) is the reference.
"""

import pytest

from repro.analog import min_max_netlist, simulate

A_TIMES, B_TIMES = (115,), (64,)


def reference_times():
    res = simulate(min_max_netlist(A_TIMES, B_TIMES), 220.0, 0.025)
    return res.pulses["low"][0], res.pulses["high"][0]


@pytest.mark.parametrize("dt", [0.2, 0.1, 0.05])
def test_step_size(benchmark, dt):
    low_ref, high_ref = reference_times()
    netlist = min_max_netlist(A_TIMES, B_TIMES)
    result = benchmark.pedantic(
        lambda: simulate(netlist, 220.0, dt), rounds=1, iterations=1
    )
    assert result.pulses["low"][0] == pytest.approx(low_ref, abs=0.5)
    assert result.pulses["high"][0] == pytest.approx(high_ref, abs=0.5)
