"""Vectorized multi-seed Monte-Carlo benchmarks (repro.core.batchsim).

One 200-seed drain per (design, mode) pair, on a pre-built Simulation
with a warm compiled-circuit memo so the comparison isolates the drain
itself (elaboration/compile cost is measured by ``bench_compile.py``,
and the end-to-end ``measure_yield`` path by ``bench_mc_scaling.py``):

* ``batched`` — the default vectorized drain (``batch=None``): all seeds
  advance through one event-loop pass as lanes of a structure-of-arrays
  batch, with diverging seeds replayed on the per-seed reference drain;
* ``perseed`` — ``batch=0``: the same counter-scheme noise, one full
  event-loop drain per seed. This is the reference the batched drain is
  element-wise identical to (tests/test_differential.py).

``tools/bench_guard.py`` records both medians per design in the
``mc_batched_200_seeds_s`` block of ``BENCH_sim.json`` and fails if the
batched drain is less than 5x faster than the per-seed reference.

Two designs bracket the divergence spectrum: the Min-Max pair (shallow,
fully conformant at this sigma — the pure vectorization win) and the
bitonic-8 sorter (deep, a few lanes diverge and pay the replay cost).
"""

import pytest

from bench_mc_scaling import MC_SIGMA, bitonic8_factory, bitonic8_ok
from repro.core.batchsim import run_batch
from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import min_max

MC_BATCHED_SEEDS = 200


def minmax_factory():
    """Fresh Min-Max comparator circuit (module-level: picklable)."""
    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit


def minmax_ok(events):
    return (
        len(events["low"]) == 1
        and len(events["high"]) == 1
        and events["low"][0] < events["high"][0]
    )


DESIGNS = {
    "minmax": (minmax_factory, minmax_ok),
    "bitonic8": (bitonic8_factory, bitonic8_ok),
}

#: ``None`` is the production default (auto lane width); ``0`` disables
#: batching and drains one seed at a time — the comparison baseline.
MODES = {"batched": None, "perseed": 0}


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("design", list(DESIGNS))
def test_mc_batched(benchmark, design, mode):
    factory, predicate = DESIGNS[design]
    batch = MODES[mode]
    sim = Simulation(factory())  # compile once, outside the timed region

    def sweep():
        return run_batch(
            sim, predicate, MC_SIGMA, range(MC_BATCHED_SEEDS), batch=batch
        )

    # One warmup round absorbs first-touch numpy/ufunc setup; the timed
    # round then measures the steady-state drain the sweeps actually run.
    outcomes, _, report = benchmark.pedantic(
        sweep, rounds=1, iterations=1, warmup_rounds=1
    )
    assert len(outcomes) == MC_BATCHED_SEEDS
    if mode == "batched":
        # Every seed is accounted for: classified in a batch lane or
        # replayed on the reference drain.
        assert report.batched_lanes + len(report.fallback_seeds) \
            == MC_BATCHED_SEEDS
    else:
        assert report.batched_lanes == 0 and not report.fallback_seeds
