"""Ablation: the pulse heap vs a naive sorted-list event queue.

DESIGN.md calls out the heap as a design choice from Section 4.3 ("a
priority heap of pending pulses"); this quantifies it against the obvious
alternative on a pulse-dense workload.
"""

import bisect
import itertools
import random

from repro.core.events import Pulse, PulseHeap
from repro.core.node import Node
from repro.core.wire import Wire
from repro.sfq import JTL

N_PULSES = 5_000


def make_nodes(count=16):
    nodes = []
    for _ in range(count):
        element = JTL()
        nodes.append(Node(element, [Wire()], [Wire()]))
    return nodes


def workload(nodes, seed=0):
    rng = random.Random(seed)
    return [
        Pulse(round(rng.uniform(0, 1000), 1), rng.choice(nodes), "a")
        for _ in range(N_PULSES)
    ]


def drain_heap(pulses):
    heap = PulseHeap()
    for pulse in pulses:
        heap.push(pulse)
    groups = 0
    while heap:
        heap.pop_simultaneous()
        groups += 1
    return groups


def drain_sorted_list(pulses):
    """The ablation: keep a list sorted by (time, node id) via bisect."""
    counter = itertools.count()
    queue = []
    for pulse in pulses:
        bisect.insort(queue, (pulse.time, pulse.node.node_id, next(counter), pulse))
    groups = 0
    while queue:
        time, node_id, _, _ = queue[0]
        while queue and queue[0][0] == time and queue[0][1] == node_id:
            queue.pop(0)
        groups += 1
    return groups


def test_pulse_heap(benchmark):
    nodes = make_nodes()
    pulses = workload(nodes)
    assert benchmark(lambda: drain_heap(list(pulses))) > 0


def test_sorted_list_ablation(benchmark):
    nodes = make_nodes()
    pulses = workload(nodes)
    assert benchmark(lambda: drain_sorted_list(list(pulses))) > 0
