"""MC scaling benchmarks: model checking and Monte-Carlo yield.

Two MC axes in one file:

* model-checker scaling — symbolic states vs input-schedule length on the
  AND cell (the paper's Table 3 'States' column, swept);
* Monte-Carlo yield scaling — a 200-seed Section 5.2 sweep of the bitonic-8
  sorter, sequential (``workers=1``, the reference path) vs the
  seed-sharded process pool (``workers=4``). On multi-core hosts the pool
  run should be several times faster; results are bit-identical either way.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.montecarlo import measure_yield
from repro.designs import bitonic_sorter
from repro.mc import ModelChecker
from repro.sfq import and_s
from repro.ta import no_error_query, translate_circuit

MC_SORT_TIMES = (20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0)
MC_SIGMA = 0.5
MC_SEEDS = 200


def bitonic8_factory():
    """Fresh bitonic-8 circuit (module-level: picklable for the pool)."""
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(MC_SORT_TIMES)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
    return circuit


def bitonic8_ok(events):
    """Every output pulsed once, in sorted arrival order."""
    if any(len(events[f"o{k}"]) != 1 for k in range(8)):
        return False
    firsts = [events[f"o{k}"][0] for k in range(8)]
    return firsts == sorted(firsts)


@pytest.mark.parametrize("workers", [1, 4])
def test_mc_yield_workers(benchmark, workers):
    result = benchmark.pedantic(
        lambda: measure_yield(
            bitonic8_factory, bitonic8_ok, sigma=MC_SIGMA,
            seeds=range(MC_SEEDS), workers=workers,
        ),
        rounds=1, iterations=1,
    )
    assert result.runs == MC_SEEDS
    assert result.passed + result.mis_behaved + result.violations == MC_SEEDS


@pytest.mark.parametrize("n_clocks", [2, 4, 6])
def test_and_verification_scaling(benchmark, n_clocks):
    with fresh_circuit() as circuit:
        a = inp_at(*[30.0 + 100.0 * k for k in range(n_clocks // 2)], name="A")
        b = inp_at(*[65.0 + 100.0 * k for k in range(n_clocks // 2)], name="B")
        clk = inp(start=50, period=50, n=n_clocks, name="CLK")
        and_s(a, b, clk, name="Q")
    translation = translate_circuit(circuit)
    query = no_error_query(translation)
    result = benchmark.pedantic(
        lambda: ModelChecker(translation.network).run([query]),
        rounds=1, iterations=1,
    )
    assert result.satisfied
