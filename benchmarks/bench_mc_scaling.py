"""Model-checker scaling: symbolic states vs input-schedule length.

The zone graph grows with the number of environment pulses; this pins the
growth curve on the AND cell (the paper's Table 3 'States' column, swept).
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.mc import ModelChecker
from repro.sfq import and_s
from repro.ta import no_error_query, translate_circuit


@pytest.mark.parametrize("n_clocks", [2, 4, 6])
def test_and_verification_scaling(benchmark, n_clocks):
    with fresh_circuit() as circuit:
        a = inp_at(*[30.0 + 100.0 * k for k in range(n_clocks // 2)], name="A")
        b = inp_at(*[65.0 + 100.0 * k for k in range(n_clocks // 2)], name="B")
        clk = inp(start=50, period=50, n=n_clocks, name="CLK")
        and_s(a, b, clk, name="Q")
    translation = translate_circuit(circuit)
    query = no_error_query(translation)
    result = benchmark.pedantic(
        lambda: ModelChecker(translation.network).run([query]),
        rounds=1, iterations=1,
    )
    assert result.satisfied
