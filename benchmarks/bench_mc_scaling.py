"""MC scaling benchmarks: model checking and Monte-Carlo yield.

Three MC axes in one file:

* model-checker scaling — symbolic states vs input-schedule length on the
  AND cell (the paper's Table 3 'States' column, swept);
* Monte-Carlo yield scaling — a 200-seed Section 5.2 sweep of the bitonic-8
  sorter, sequential (``workers=1``, the reference path) vs the
  persistent-pool :class:`~repro.core.parallel.YieldEngine`
  (``workers=4``); results are bit-identical either way;
* amortized multi-call scaling — the same 200 seeds swept at four sigma
  levels through one engine, the ``yield_curve`` / ``critical_sigma``
  usage pattern the engine exists for: pool startup is paid once and
  amortized over every call.

The ``workers=4`` variants are skipped on single-CPU hosts, where a pool
can only lose; ``tools/bench_guard.py`` records the skip explicitly
instead of a misleading ratio.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.montecarlo import measure_yield, yield_curve
from repro.core.parallel import YieldEngine, available_cpus
from repro.designs import bitonic_sorter
from repro.mc import ModelChecker
from repro.sfq import and_s
from repro.ta import no_error_query, translate_circuit

MC_SORT_TIMES = (20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0)
MC_SIGMA = 0.5
MC_SEEDS = 200
MC_AMORTIZED_SIGMAS = (0.2, 0.4, 0.6, 0.8)

#: ``workers=4`` only makes sense with >= 2 CPUs; skipping keeps 1-CPU
#: containers from recording a pool-overhead number as if it were a
#: parallel speedup.
NEEDS_MULTI_CPU = pytest.mark.skipif(
    available_cpus() < 2, reason="parallel Monte-Carlo needs >= 2 CPUs"
)


def bitonic8_factory():
    """Fresh bitonic-8 circuit (module-level: picklable for the pool)."""
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(MC_SORT_TIMES)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
    return circuit


def bitonic8_ok(events):
    """Every output pulsed once, in sorted arrival order."""
    if any(len(events[f"o{k}"]) != 1 for k in range(8)):
        return False
    firsts = [events[f"o{k}"][0] for k in range(8)]
    return firsts == sorted(firsts)


@pytest.mark.parametrize(
    "workers", [1, pytest.param(4, marks=NEEDS_MULTI_CPU)]
)
def test_mc_yield_workers(benchmark, workers):
    """One cold 200-seed call: includes pool startup for ``workers=4``."""

    def sweep():
        with YieldEngine(workers=workers) as engine:
            return measure_yield(
                bitonic8_factory, bitonic8_ok, sigma=MC_SIGMA,
                seeds=range(MC_SEEDS), workers=workers, engine=engine,
            )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert result.runs == MC_SEEDS
    assert result.passed + result.mis_behaved + result.violations == MC_SEEDS


@pytest.mark.parametrize(
    "workers", [1, pytest.param(4, marks=NEEDS_MULTI_CPU)]
)
def test_mc_amortized(benchmark, workers):
    """200 seeds x 4 sigma levels through one persistent engine.

    The multi-call pattern (``yield_curve``, ``critical_sigma``): one
    pool, created inside the timed region, reused by every sigma level.
    This is the number ``tools/bench_guard.py`` records as the amortized
    parallel speedup.
    """

    def sweep():
        with YieldEngine(workers=workers) as engine:
            return yield_curve(
                bitonic8_factory, bitonic8_ok, sigmas=MC_AMORTIZED_SIGMAS,
                seeds=range(MC_SEEDS), workers=workers, engine=engine,
            )

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert [r.sigma for r in results] == list(MC_AMORTIZED_SIGMAS)
    assert all(r.runs == MC_SEEDS for r in results)


@pytest.mark.parametrize("n_clocks", [2, 4, 6])
def test_and_verification_scaling(benchmark, n_clocks):
    with fresh_circuit() as circuit:
        a = inp_at(*[30.0 + 100.0 * k for k in range(n_clocks // 2)], name="A")
        b = inp_at(*[65.0 + 100.0 * k for k in range(n_clocks // 2)], name="B")
        clk = inp(start=50, period=50, n=n_clocks, name="CLK")
        and_s(a, b, clk, name="Q")
    translation = translate_circuit(circuit)
    query = no_error_query(translation)
    result = benchmark.pedantic(
        lambda: ModelChecker(translation.network).run([query]),
        rounds=1, iterations=1,
    )
    assert result.satisfied
