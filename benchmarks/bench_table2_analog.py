"""Table 2 (schematic side): RCSJ transient-simulation time.

One round per design is plenty — the point is the orders-of-magnitude gap
against bench_table2_pylse.py, not microbenchmark precision.
"""

import pytest

from repro.analog import (
    bitonic_netlist,
    c_element_netlist,
    inv_c_netlist,
    min_max_netlist,
    simulate,
)

A_TIMES, B_TIMES = (115, 215, 315), (64, 184, 304)
SORT_TIMES = (20, 70, 10, 45, 5, 90, 33, 60)


@pytest.mark.parametrize(
    "name,netlist,t_end",
    [
        ("C", c_element_netlist(A_TIMES, B_TIMES), 420.0),
        ("InvC", inv_c_netlist(A_TIMES, B_TIMES), 420.0),
        ("MinMax", min_max_netlist(A_TIMES, B_TIMES), 420.0),
        ("Bitonic8", bitonic_netlist(SORT_TIMES), 450.0),
    ],
    ids=lambda x: x if isinstance(x, str) else "",
)
def test_analog_simulation(benchmark, name, netlist, t_end):
    result = benchmark.pedantic(
        lambda: simulate(netlist, t_end), rounds=1, iterations=1
    )
    assert any(result.pulses.values())
